"""Chaos ablation: fault rate × checkpoint interval (robustness cost).

Real SGX deployments live with ``SGX_ERROR_ENCLAVE_LOST``: power
transitions and AEX storms kill enclaves under their callers, and a
shielding runtime must rebuild, re-attest, and restore sealed state
(SCONE, SecureKeeper). This experiment injects exactly those faults
into the partitioned bank and SecureKeeper applications with a seeded
:class:`~repro.faults.FaultInjector` and measures what surviving them
costs:

- **throughput degradation** of the bank workload as the enclave-crash
  probability per crossing rises, for several checkpoint cadences;
- **recovery-cost breakdown** — reinitialize (EADD+EEXTEND reload),
  local re-attestation, sealed-checkpoint restore, retry backoff — all
  in virtual ns;
- **durability** — updates applied before a crash but after the last
  sealed checkpoint are rolled back; eager checkpointing (interval 0)
  loses nothing and the apps finish with *correct* results despite
  enclave losses.

Everything is deterministic under a fixed seed: two runs produce
byte-identical ledgers and fault schedules (the determinism test and
the CI smoke job both rely on this).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.bank import Account, BANK_CLASSES
from repro.apps.securekeeper import (
    SECUREKEEPER_CLASSES,
    PayloadVault,
    SecureKeeperClient,
    ZNodeStore,
)
from repro.core import Partitioner, PartitionOptions
from repro.errors import NonIdempotentReplayError, RetryExhaustedError
from repro.experiments.common import ExperimentTable
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultRule,
    RetryPolicy,
    attach_recovery,
)
from repro.obs.artifacts import run_artifact, write_artifact

DEFAULT_FAULT_RATES = (0.0, 0.02, 0.05, 0.1)
#: 0 = seal after every successful crossing (eager); larger intervals
#: amortise sealing cost but roll back more work on a crash.
DEFAULT_CHECKPOINT_INTERVALS_NS = (0.0, 2_000_000.0)
DEFAULT_SEED = 2024

#: Routines safe to replay after a mid-call loss in these workloads.
_BANK_IDEMPOTENT = ("relay_*_get_*", "relay_*_count", "gc_release")
_KEEPER_IDEMPOTENT = ("relay_PayloadVault_*", "gc_release")


@dataclass
class ChaosResult:
    """One (fault rate, checkpoint interval) bank configuration."""

    fault_rate: float
    checkpoint_interval_ns: float
    ops: int
    aborted_ops: int
    elapsed_s: float
    throughput_ops_s: float
    expected_total: int
    observed_total: int
    faults_injected: int
    enclave_losses: int
    recovery: Dict[str, float]
    checkpoints: Dict[str, int]
    ledger: Dict[str, Tuple[int, float]]
    events: Tuple[Tuple[Any, ...], ...]

    @property
    def lost_updates(self) -> int:
        return self.expected_total - self.observed_total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault_rate": self.fault_rate,
            "checkpoint_interval_ns": self.checkpoint_interval_ns,
            "ops": self.ops,
            "aborted_ops": self.aborted_ops,
            "elapsed_s": self.elapsed_s,
            "throughput_ops_s": self.throughput_ops_s,
            "expected_total": self.expected_total,
            "observed_total": self.observed_total,
            "lost_updates": self.lost_updates,
            "faults_injected": self.faults_injected,
            "enclave_losses": self.enclave_losses,
            "recovery": self.recovery,
            "checkpoints": self.checkpoints,
        }


@dataclass
class KeeperChaosResult:
    """SecureKeeper correctness run under mid-call vault crashes."""

    entries: int
    correct_reads: int
    enclave_losses: int
    faults_injected: int
    recovery: Dict[str, float]
    events: Tuple[Tuple[Any, ...], ...]

    @property
    def all_correct(self) -> bool:
        return self.correct_reads == self.entries

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entries": self.entries,
            "correct_reads": self.correct_reads,
            "all_correct": self.all_correct,
            "enclave_losses": self.enclave_losses,
            "faults_injected": self.faults_injected,
            "recovery": self.recovery,
        }


@dataclass
class ChaosReport:
    """Full sweep output: tables + per-config raw results."""

    throughput: ExperimentTable
    recovery_cost: ExperimentTable
    durability: ExperimentTable
    results: List[ChaosResult] = field(default_factory=list)
    keeper: Optional[KeeperChaosResult] = None
    seed: int = DEFAULT_SEED

    @property
    def total_recoveries(self) -> int:
        total = sum(int(r.recovery.get("recoveries", 0)) for r in self.results)
        if self.keeper is not None:
            total += self.keeper.enclave_losses
        return total

    def format(self) -> str:
        parts = [
            self.throughput.format(y_format="{:.1f}"),
            "",
            self.recovery_cost.format(y_format="{:.0f}"),
            "",
            self.durability.format(y_format="{:.0f}"),
        ]
        if self.keeper is not None:
            parts += [
                "",
                (
                    f"securekeeper: {self.keeper.correct_reads}/"
                    f"{self.keeper.entries} reads correct after "
                    f"{self.keeper.enclave_losses} mid-call enclave "
                    f"loss(es)"
                ),
            ]
        parts.append(
            f"-- seed={self.seed}; recoveries across sweep: "
            f"{self.total_recoveries}"
        )
        return "\n".join(parts)

    def fingerprint(self) -> str:
        """Digest of everything determinism guards: ledgers, fault
        schedules, totals. Same seed => same fingerprint."""
        payload = {
            "seed": self.seed,
            "results": [
                {
                    **r.to_dict(),
                    "ledger": {k: list(v) for k, v in sorted(r.ledger.items())},
                    "events": [list(e) for e in r.events],
                }
                for r in self.results
            ],
            "keeper": (
                {
                    **self.keeper.to_dict(),
                    "events": [list(e) for e in self.keeper.events],
                }
                if self.keeper is not None
                else None
            ),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_artifact(self) -> Dict[str, Any]:
        return run_artifact(
            "fault_recovery",
            tables=[self.throughput, self.recovery_cost, self.durability],
            extra={
                "chaos": {
                    "seed": self.seed,
                    "fingerprint": self.fingerprint(),
                    "total_recoveries": self.total_recoveries,
                    "configs": [r.to_dict() for r in self.results],
                    "securekeeper": (
                        self.keeper.to_dict() if self.keeper is not None else None
                    ),
                }
            },
        )

    def write_artifact(self, path: str) -> None:
        write_artifact(path, self.to_artifact())


def _bank_rules(fault_rate: float) -> List[FaultRule]:
    if fault_rate <= 0:
        return []
    return [
        # Permanent losses before dispatch: always safe to retry.
        FaultRule(
            FaultKind.ENCLAVE_CRASH,
            routine="relay_*",
            probability=fault_rate,
            phase="pre",
        ),
        # AEX-style transient aborts at half the crash rate.
        FaultRule(
            FaultKind.TRANSIENT_ABORT,
            routine="relay_*",
            probability=fault_rate / 2,
        ),
    ]


def run_bank_chaos(
    fault_rate: float,
    checkpoint_interval_ns: float,
    n_accounts: int = 6,
    rounds: int = 20,
    seed: int = DEFAULT_SEED,
) -> ChaosResult:
    """Drive the bank app under one chaos plan; returns measurements."""
    app = Partitioner(PartitionOptions(name="chaos_bank")).partition(
        list(BANK_CLASSES)
    )
    platform = app.platform
    injector = FaultInjector(seed=seed, rules=_bank_rules(fault_rate))
    with app.start() as session:
        coordinator = attach_recovery(
            session,
            checkpoint_interval_ns=checkpoint_interval_ns,
            policy=RetryPolicy(
                max_attempts=6, idempotent_patterns=_BANK_IDEMPOTENT
            ),
            platform_secret=b"chaos-secret",
        )
        # Steady state first: accounts exist and are checkpointed before
        # the chaos plan arms, so crashes never orphan live proxies.
        accounts = [Account(f"acct-{i}", 0) for i in range(n_accounts)]
        coordinator.checkpoints.checkpoint()
        platform.enable_fault_injection(injector)

        started_s = platform.now_s
        applied = 0
        aborted = 0
        for _ in range(rounds):
            for account in accounts:
                try:
                    account.update_balance(1)
                    applied += 1
                except (RetryExhaustedError, NonIdempotentReplayError):
                    aborted += 1
        observed_total = 0
        for account in accounts:
            observed_total += account.get_balance()
        elapsed_s = platform.now_s - started_s

        # Disarm before teardown: the GC sweep and destroy are not part
        # of the measured chaos window.
        platform.disable_fault_injection()
        session.runtime.recovery = None

        ops = applied + aborted + n_accounts
        recovery = dict(coordinator.stats.to_dict())
        checkpoints = dict(coordinator.checkpoints.stats.to_dict())
        losses = session.enclave.rebuilds
        result = ChaosResult(
            fault_rate=fault_rate,
            checkpoint_interval_ns=checkpoint_interval_ns,
            ops=ops,
            aborted_ops=aborted,
            elapsed_s=elapsed_s,
            throughput_ops_s=ops / elapsed_s if elapsed_s else 0.0,
            expected_total=applied,
            observed_total=observed_total,
            faults_injected=injector.faults_injected,
            enclave_losses=losses,
            recovery=recovery,
            checkpoints=checkpoints,
            ledger={k: tuple(v) for k, v in platform.snapshot().items()},
            events=injector.event_schedule(),
        )
    return result


def run_keeper_chaos(
    n_entries: int = 12, seed: int = DEFAULT_SEED
) -> KeeperChaosResult:
    """SecureKeeper under *mid-call* vault crashes.

    ``PayloadVault`` operations are replay-safe (encrypt re-derives a
    fresh nonce; decrypt is pure), so they are declared idempotent and
    the runtime may re-execute them after a loss whose reply vanished —
    the hardest at-most-once case. A deterministic ``at_call`` rule
    guarantees at least one loss regardless of scale.
    """
    app = Partitioner(PartitionOptions(name="chaos_keeper")).partition(
        list(SECUREKEEPER_CLASSES)
    )
    platform = app.platform
    injector = FaultInjector(
        seed=seed,
        rules=[
            FaultRule(
                FaultKind.ENCLAVE_CRASH,
                routine="relay_PayloadVault_*",
                at_call=5,
                phase="mid",
                max_fires=1,
            ),
            FaultRule(
                FaultKind.ENCLAVE_CRASH,
                routine="relay_PayloadVault_*",
                probability=0.04,
                phase="mid",
            ),
        ],
    )
    with app.start() as session:
        coordinator = attach_recovery(
            session,
            checkpoint_interval_ns=0.0,
            policy=RetryPolicy(
                max_attempts=6, idempotent_patterns=_KEEPER_IDEMPOTENT
            ),
            platform_secret=b"chaos-secret",
        )
        client = SecureKeeperClient(PayloadVault("master"), ZNodeStore())
        coordinator.checkpoints.checkpoint()
        platform.enable_fault_injection(injector)

        for index in range(n_entries):
            client.put(f"/cfg{index}", f"value-{index}")
        correct = 0
        for index in range(n_entries):
            if client.read(f"/cfg{index}") == f"value-{index}":
                correct += 1

        platform.disable_fault_injection()
        session.runtime.recovery = None
        result = KeeperChaosResult(
            entries=n_entries,
            correct_reads=correct,
            enclave_losses=session.enclave.rebuilds,
            faults_injected=injector.faults_injected,
            recovery=dict(coordinator.stats.to_dict()),
            events=injector.event_schedule(),
        )
    return result


def run_chaos(
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    checkpoint_intervals_ns: Sequence[float] = DEFAULT_CHECKPOINT_INTERVALS_NS,
    n_accounts: int = 6,
    rounds: int = 20,
    n_entries: int = 12,
    seed: int = DEFAULT_SEED,
    include_keeper: bool = True,
) -> ChaosReport:
    """Sweep fault rate × checkpoint interval; returns the full report."""
    throughput = ExperimentTable(
        title="Chaos ablation — bank throughput vs enclave-crash rate",
        x_label="fault rate",
        y_label="ops per virtual second",
        notes="each crossing may crash the enclave; recovery is priced",
    )
    recovery_cost = ExperimentTable(
        title="Recovery cost breakdown (eager checkpoints)",
        x_label="fault rate",
        y_label="virtual ns",
        notes="reinit = EADD+EEXTEND reload; restore = sealed-state unseal",
    )
    durability = ExperimentTable(
        title="Lost updates vs checkpoint interval",
        x_label="fault rate",
        y_label="updates rolled back",
        notes="interval 0 seals after every crossing: nothing is lost",
    )

    report = ChaosReport(
        throughput=throughput,
        recovery_cost=recovery_cost,
        durability=durability,
        seed=seed,
    )
    cost_series = {
        component: recovery_cost.new_series(component)
        for component in ("reinit_ns", "reattest_ns", "restore_ns", "backoff_ns")
    }
    for interval_ns in checkpoint_intervals_ns:
        label = (
            "eager checkpoint"
            if interval_ns == 0
            else f"interval {interval_ns:g} ns"
        )
        tp_series = throughput.new_series(label)
        lost_series = durability.new_series(label)
        for rate in fault_rates:
            result = run_bank_chaos(
                rate,
                interval_ns,
                n_accounts=n_accounts,
                rounds=rounds,
                seed=seed,
            )
            report.results.append(result)
            tp_series.add(rate, result.throughput_ops_s)
            lost_series.add(rate, result.lost_updates)
            if interval_ns == checkpoint_intervals_ns[0]:
                for component, series in cost_series.items():
                    series.add(rate, result.recovery.get(component, 0.0))
    if include_keeper:
        report.keeper = run_keeper_chaos(n_entries=n_entries, seed=seed)
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_chaos().format())


if __name__ == "__main__":  # pragma: no cover
    main()
