"""Extra experiment — SecureKeeper-style partitioning (related work [9]).

The coordination-service split (payload vault trusted, ZooKeeper-style
framework untrusted) is *chatty*: every put/read crosses the boundary
for encryption. That makes it exactly the workload the paper's §6.2/§6.3
micro-benchmarks warn about — per-operation RMIs cost ~10² µs — and the
workload §7's switchless-call future work exists for:

- plain partitioning pays the full relay (transition + isolate attach)
  per vault call and loses badly;
- partitioning **with switchless calls** keeps the framework (network
  and txn-log syscalls, tree bookkeeping) at native cost while vault
  crossings shrink to worker-queue hops — beating the whole-service-in-
  enclave deployment, which relays every network/log syscall out.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.securekeeper import (
    SECUREKEEPER_CLASSES,
    PayloadVault,
    SecureKeeperClient,
    ZNodeStore,
)
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions
from repro.experiments.common import ExperimentTable

DEFAULT_ENTRY_COUNTS = (500, 1_000, 2_000)


def _drive(n_entries: int) -> None:
    client = SecureKeeperClient(PayloadVault("master"), ZNodeStore())
    client.put("/app", "root")
    for index in range(n_entries):
        client.put(f"/app/cfg{index}", f"value-{index}" * 4)
    for index in range(n_entries):
        value = client.read(f"/app/cfg{index}")
        assert value.startswith(f"value-{index}")


def run_securekeeper(
    entry_counts: Sequence[int] = DEFAULT_ENTRY_COUNTS,
) -> ExperimentTable:
    table = ExperimentTable(
        title="SecureKeeper-style partitioning — the chatty-RMI lesson",
        x_label="entries",
        y_label="run time (s)",
        notes=(
            "put+read of encrypted configuration entries; the vault "
            "crossing per operation makes switchless calls (§7) decisive"
        ),
    )
    configurations = {
        "NoSGX": lambda: native_session(name="sk"),
        "Part": lambda: Partitioner(PartitionOptions(name="sk_part"))
        .partition(list(SECUREKEEPER_CLASSES))
        .start(),
        "Part+switchless": lambda: Partitioner(
            PartitionOptions(name="sk_sw", switchless=True)
        )
        .partition(list(SECUREKEEPER_CLASSES))
        .start(),
        "Unpart (all in enclave)": lambda: Partitioner(
            PartitionOptions(name="sk_nopart")
        )
        .unpartitioned([PayloadVault, ZNodeStore, SecureKeeperClient])
        .start(),
    }
    for name, factory in configurations.items():
        series = table.new_series(name)
        for count in entry_counts:
            with factory() as session:
                _drive(count)
                series.add(count, session.platform.now_s)
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_securekeeper().format(y_format="{:.4f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
