"""Extra experiment — the EPC paging cliff (§2.1).

"The Linux SGX kernel driver can swap pages between the EPC and regular
DRAM. This paging mechanism lets enclave applications use more than the
total EPC, but at a significant cost." This experiment sweeps an
in-enclave workload's working set across the usable-EPC boundary
(93.5 MB on the paper's server) and reports the slowdown relative to
the same work with an EPC-resident working set — the cliff every
enclave paper shows.
"""

from __future__ import annotations

from typing import Sequence

from repro.costs.machine import MB
from repro.costs.platform import fresh_platform
from repro.experiments.common import ExperimentTable
from repro.runtime.context import ExecutionContext, Location

#: Memory traffic per sweep point (fixed; only the working set varies).
_TRAFFIC_BYTES = 64 * MB
DEFAULT_WORKING_SETS_MB = (16, 32, 64, 80, 93, 110, 128, 192, 256)


def run_epc_paging(
    working_sets_mb: Sequence[int] = DEFAULT_WORKING_SETS_MB,
) -> ExperimentTable:
    table = ExperimentTable(
        title="EPC paging cliff — in-enclave slowdown vs working set",
        x_label="working set (MB)",
        y_label="value",
        notes="usable EPC is 93.5 MB (§6.1); traffic fixed at 64 MB/point",
    )
    enclave_series = table.new_series("enclave time (s)")
    host_series = table.new_series("host time (s)")
    slowdown = table.new_series("enclave/host slowdown")
    for ws_mb in working_sets_mb:
        ws_bytes = ws_mb * MB
        platform_in = fresh_platform()
        enclave_ctx = ExecutionContext(platform_in, Location.ENCLAVE, label="epc")
        enclave_ctx.memory_traffic(_TRAFFIC_BYTES, ws_bytes=ws_bytes)
        platform_out = fresh_platform()
        host_ctx = ExecutionContext(platform_out, Location.HOST, label="epc")
        host_ctx.memory_traffic(_TRAFFIC_BYTES, ws_bytes=ws_bytes)
        enclave_series.add(ws_mb, platform_in.now_s)
        host_series.add(ws_mb, platform_out.now_s)
        slowdown.add(ws_mb, platform_in.now_s / platform_out.now_s)
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_epc_paging().format(y_format="{:.4f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
