"""Traffic ablation: open-loop load, admission control, autoscaling.

The ROADMAP's north star is a shielded service under heavy concurrent
traffic. This ablation closes the loop: a seeded open-loop workload
(:mod:`repro.traffic`) offers load the backend cannot refuse, an
admission layer degrades gracefully when it saturates, and the
hysteresis autoscaler (:mod:`repro.autoscale`) grows/shrinks the shard
group behind it with sealed live migration. Four measurements:

- **latency vs offered load** — p95 completion latency under a fixed
  1-shard deployment versus the autoscaled one, at increasing Poisson
  rates. The fixed run breaches the latency SLO (its admission queue
  backs up, the shed-burn alert fires); the autoscaled run holds it by
  scaling out;
- **hysteresis trace** — a diurnal (sinusoidal-rate) day: the
  controller scales up on the ramp and back down in the trough, with
  asymmetric thresholds + cooldown + down-stability preventing flap;
- **chaos-safe migration** — a seeded shard loss *mid-migration*:
  the move rolls back or completes from sealed state, acked updates
  are never lost and never double-applied (at-most-once);
- **zero-cost-when-off** — with admission and autoscaling disabled,
  the harness's ledger, clock and checksums are byte-identical to a
  plain sequential loop over the same schedule.

Everything is a pure function of the seed; the report fingerprint
hashes every ledger, latency distribution, hysteresis trace and chaos
outcome (CI ``traffic-smoke`` runs it twice and compares).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.apps.bank import Account, BANK_CLASSES
from repro.apps.paldb.workload import PALDB_RUWT_CLASSES, TrustedDBWriter
from repro.apps.securekeeper import SECUREKEEPER_CLASSES, PayloadVault
from repro.autoscale import (
    AutoscalePolicy,
    HysteresisAutoscaler,
    ShardMigrator,
)
from repro.concurrency import (
    ContendedWorkerPool,
    SessionScheduler,
    ShardedEnclaveGroup,
    attach_worker_pool,
)
from repro.core import Partitioner, PartitionOptions
from repro.experiments.common import ExperimentTable
from repro.faults import FaultInjector, FaultKind, FaultRule, RetryPolicy
from repro.obs.artifacts import run_artifact, write_artifact
from repro.obs.slo import SloWatchdog, default_rulebook
from repro.sgx.driver import SgxDriver
from repro.traffic import (
    AdmissionController,
    OpenLoopHarness,
    Request,
    TokenBucket,
    WorkloadGenerator,
    offered_rate_per_s,
)

DEFAULT_SEED = 13_117

#: Latency objective the headline comparison is judged against. A
#: 2-slot fixed deployment saturates near 50k req/s of virtual time;
#: at 100k its admission queue pushes p95 past this bar while the
#: autoscaled deployment stays under half of it.
DEFAULT_SLO_P95_MS = 0.5

#: Poisson rates (requests per virtual second) for the load sweep.
DEFAULT_RATES: Tuple[float, ...] = (20_000.0, 50_000.0, 100_000.0)
QUICK_RATES: Tuple[float, ...] = (20_000.0, 100_000.0)

_THINK_NS = 1_000.0
_EPC_BUDGET_PAGES = 96
_TOUCH_BYTES = 2_048
_WORKING_SET_BYTES = 8 * 4_096


# -- per-request session bodies ------------------------------------------------


def _bank_body(migrator: ShardMigrator, acked: Dict[str, int], request: Request):
    """Increment the keyed account once per op; count each ack.

    The account is re-resolved through the migrator after every yield:
    a scale event between scheduler steps may have live-migrated the
    key, and a cached reference would go stale.
    """

    def body() -> Generator[Optional[float], None, Any]:
        for _ in range(request.ops):
            account = migrator.lookup(request.key)
            account.update_balance(1)
            acked[request.key] += 1
            yield _THINK_NS
        return migrator.lookup(request.key).get_balance()

    return body()


def _keeper_body(vaults: Dict[str, Any], totals: Dict[str, int], request: Request):
    """Encrypt/audit/decrypt round trips against the keyed vault."""

    def body() -> Generator[Optional[float], None, Any]:
        vault = vaults[request.key]
        correct = 0
        for index in range(request.ops):
            blob = vault.encrypt(f"r{request.rid}-v{index}")
            vault.record_access(f"r{request.rid}-z{index}")
            yield _THINK_NS
            if vault.decrypt(blob) == f"r{request.rid}-v{index}":
                correct += 1
        totals["keeper_ok"] += correct
        return correct

    return body()


def _paldb_body(
    group: ShardedEnclaveGroup,
    totals: Dict[str, int],
    workdir: str,
    request: Request,
):
    """Write one small store through a writer pinned to the request key."""

    def body() -> Generator[Optional[float], None, Any]:
        path = os.path.join(workdir, f"r{request.rid}.store")
        writer = group.create_pinned(
            request.key, lambda: TrustedDBWriter(path)
        )
        yield _THINK_NS
        keys = [f"k{i}" for i in range(request.ops)]
        values = [f"v{request.rid}-{i}" for i in range(request.ops)]
        written = writer.write_all(keys, values)
        totals["paldb_records"] += written
        return written

    return body()


# -- results -------------------------------------------------------------------


@dataclass
class TrafficRunResult:
    """One (mode, offered load) measurement."""

    label: str
    mode: str
    offered_rps: float
    requests: int
    completed: int
    shed: Dict[str, int]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    makespan_s: float
    fallback_share: float
    final_shards: int
    scale_events: List[Dict[str, Any]]
    migration: Dict[str, int]
    slo_breached: List[str]
    slo_alerts: int
    lost_acked: int
    dup_applied: int
    checksum: Tuple[Any, ...]
    trace_digest: str
    now_s: float
    ledger: Dict[str, Tuple[int, float]]

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "mode": self.mode,
            "offered_rps": round(self.offered_rps, 1),
            "requests": self.requests,
            "completed": self.completed,
            "shed": dict(sorted(self.shed.items())),
            "shed_total": self.shed_total,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "makespan_s": self.makespan_s,
            "fallback_share": round(self.fallback_share, 4),
            "final_shards": self.final_shards,
            "scale_events": self.scale_events,
            "migration": dict(self.migration),
            "slo_breached": list(self.slo_breached),
            "slo_alerts": self.slo_alerts,
            "lost_acked": self.lost_acked,
            "dup_applied": self.dup_applied,
            "checksum": list(self.checksum),
            "trace_digest": self.trace_digest,
            "now_s": self.now_s,
        }


@dataclass
class TrafficReport:
    """Full traffic ablation output."""

    latency: ExperimentTable
    results: List[TrafficRunResult] = field(default_factory=list)
    hysteresis: Optional[TrafficRunResult] = None
    chaos: Optional[TrafficRunResult] = None
    zero_cost_identical: bool = False
    slo_p95_ms: float = DEFAULT_SLO_P95_MS
    #: Per mode: does the run hold the p95 objective at the top rate?
    slo_holds: Dict[str, bool] = field(default_factory=dict)
    stamped_requests: int = 0
    stamped_rps: float = 0.0
    seed: int = DEFAULT_SEED

    def format(self) -> str:
        parts = [self.latency.format(y_format="{:.3f}"), ""]
        for mode in sorted(self.slo_holds):
            verdict = "holds" if self.slo_holds[mode] else "BREACHES"
            parts.append(
                f"{mode}: p95 {verdict} the {self.slo_p95_ms:.2f}ms SLO "
                "at the top offered rate"
            )
        ok = "identical" if self.zero_cost_identical else "DIVERGED"
        parts.append(f"harness-off vs sequential ledger: {ok}")
        if self.hysteresis is not None:
            ups = sum(
                1 for e in self.hysteresis.scale_events if e["action"] == "up"
            )
            downs = sum(
                1 for e in self.hysteresis.scale_events if e["action"] == "down"
            )
            parts.append(
                f"diurnal hysteresis: {ups} scale-up(s), {downs} "
                f"scale-down(s), final shards={self.hysteresis.final_shards}"
            )
        if self.chaos is not None:
            parts.append(
                "chaos mid-migration: "
                f"{self.chaos.migration.get('interruptions', 0)} "
                f"interruption(s), lost_acked={self.chaos.lost_acked}, "
                f"dup_applied={self.chaos.dup_applied}"
            )
        if self.stamped_requests:
            parts.append(
                f"open-loop stamping: {self.stamped_requests} arrivals at "
                f"{self.stamped_rps:.0f} req/s of virtual time"
            )
        parts.append(f"-- seed={self.seed}")
        return "\n".join(parts)

    def fingerprint(self) -> str:
        """Digest of every ledger, latency, trace and chaos outcome.
        Same seed => same fingerprint (CI ``traffic-smoke`` asserts)."""
        payload = {
            "seed": self.seed,
            "slo_p95_ms": self.slo_p95_ms,
            "runs": [
                {
                    **r.to_dict(),
                    "ledger": {k: list(v) for k, v in sorted(r.ledger.items())},
                }
                for r in self.results
            ],
            "hysteresis": (
                self.hysteresis.to_dict() if self.hysteresis else None
            ),
            "chaos": self.chaos.to_dict() if self.chaos else None,
            "zero_cost_identical": self.zero_cost_identical,
            "slo_holds": dict(sorted(self.slo_holds.items())),
            "stamped": [self.stamped_requests, round(self.stamped_rps, 1)],
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_artifact(self) -> Dict[str, Any]:
        return run_artifact(
            "traffic",
            tables=[self.latency],
            extra={
                "traffic": {
                    "seed": self.seed,
                    "fingerprint": self.fingerprint(),
                    "slo_p95_ms": self.slo_p95_ms,
                    "slo_holds": dict(sorted(self.slo_holds.items())),
                    "zero_cost_identical": self.zero_cost_identical,
                    "runs": [r.to_dict() for r in self.results],
                    "hysteresis": (
                        self.hysteresis.to_dict() if self.hysteresis else None
                    ),
                    "chaos": self.chaos.to_dict() if self.chaos else None,
                    "stamped": {
                        "requests": self.stamped_requests,
                        "rps": round(self.stamped_rps, 1),
                    },
                }
            },
        )

    def write_artifact(self, path: str) -> None:
        write_artifact(path, self.to_artifact())


# -- runners -------------------------------------------------------------------


def _partitioned():
    classes = list(BANK_CLASSES) + list(SECUREKEEPER_CLASSES) + list(
        PALDB_RUWT_CLASSES
    )
    return Partitioner(PartitionOptions(name="traffic")).partition(classes)


def _restore_balance(account: Any, snapshot: Any) -> None:
    # Absorbing write: sets the balance to the sealed value regardless
    # of what the fresh object holds — re-applying cannot double-count.
    account.update_balance(snapshot - account.get_balance())


def run_traffic(
    mode: str,
    rate_per_s: float,
    n_requests: int,
    seed: int = DEFAULT_SEED,
    diurnal_amplitude: float = 0.0,
    diurnal_period_s: float = 0.001,
    chaos: bool = False,
    base_capacity: int = 2,
    queue_limit: int = 24,
    deadline_ns: float = 600_000.0,
    paldb_bucket_rps: Optional[float] = None,
    autoscale_every_ns: float = 100_000.0,
    max_shards: int = 3,
    keys_per_app: int = 6,
    label: Optional[str] = None,
) -> TrafficRunResult:
    """One open-loop run of the combined workload.

    ``mode``: ``"plain"`` (no admission, no autoscaler, no pool — the
    zero-cost configuration), ``"fixed"`` (admission at a static
    capacity) or ``"autoscaled"`` (admission + hysteresis autoscaler).
    """
    if mode not in ("plain", "fixed", "autoscaled"):
        raise ValueError(f"unknown traffic mode {mode!r}")
    schedule = WorkloadGenerator(
        rate_per_s,
        seed=seed,
        diurnal_amplitude=diurnal_amplitude,
        diurnal_period_s=diurnal_period_s,
        keys_per_app=keys_per_app,
    ).generate(n_requests)
    app = _partitioned()
    platform = app.platform
    with app.start() as session:
        shielded = mode != "plain"
        driver = SgxDriver(platform) if shielded else None
        group = ShardedEnclaveGroup(
            session,
            1,
            driver=driver,
            epc_budget_pages=_EPC_BUDGET_PAGES if shielded else None,
            touch_bytes=_TOUCH_BYTES if shielded else 0,
            working_set_bytes=_WORKING_SET_BYTES if shielded else 0,
            router="ring",
        )
        migrator = ShardMigrator(group)
        acked: Dict[str, int] = {}
        for slot in range(keys_per_app):
            key = f"bank-{slot}"
            acked[key] = 0
            migrator.manage(
                key,
                factory=lambda k=key: Account(k, 100),
                capture=lambda account: account.get_balance(),
                apply=_restore_balance,
            )
        vaults = {
            f"keeper-{slot}": group.create_pinned(
                f"keeper-{slot}",
                lambda s=slot: PayloadVault(f"master-{s}"),
            )
            for slot in range(keys_per_app)
        }
        totals = {"keeper_ok": 0, "paldb_records": 0}
        workdir = tempfile.mkdtemp(prefix="traffic_")

        def body_factory(request: Request):
            if request.app == "bank":
                return _bank_body(migrator, acked, request)
            if request.app == "keeper":
                return _keeper_body(vaults, totals, request)
            return _paldb_body(group, totals, workdir, request)

        scheduler = SessionScheduler(platform, seed=seed)
        pool = None
        admission = None
        autoscaler = None
        watchdog = None
        if shielded:
            pool = ContendedWorkerPool(2, 2)
            attach_worker_pool(session, pool)
            scheduler.pool = pool
            buckets = {}
            if paldb_bucket_rps is not None:
                buckets["paldb"] = TokenBucket(
                    paldb_bucket_rps, capacity=max(2.0, paldb_bucket_rps / 500)
                )
            admission = AdmissionController(
                capacity=base_capacity,
                queue_limit=queue_limit,
                deadline_ns=deadline_ns,
                buckets=buckets,
                platform=platform,
            )
            watchdog = SloWatchdog(
                default_rulebook(
                    epc_quota_pages=_EPC_BUDGET_PAGES,
                    window_ns=200_000.0,
                ),
                evaluate_every_ns=50_000.0,
            )
            watchdog.attach(platform, label=mode)
        if mode == "autoscaled":
            autoscaler = HysteresisAutoscaler(
                migrator,
                policy=AutoscalePolicy(
                    min_shards=1,
                    max_shards=max_shards,
                    queue_up_depth=4,
                    queue_down_depth=0,
                    cooldown_ns=2 * autoscale_every_ns,
                    down_stable_evals=3,
                    workers_per_shard=2,
                    slots_per_shard=base_capacity,
                ),
                admission=admission,
                pool=pool,
                watchdog=watchdog,
            )
        if chaos:
            injector = FaultInjector(
                seed,
                rules=[
                    FaultRule(
                        FaultKind.ENCLAVE_CRASH,
                        call_kind="shard",
                        routine="migrate.*",
                        at_call=2,
                        max_fires=1,
                    )
                ],
            )
            platform.enable_fault_injection(injector)
        harness = OpenLoopHarness(
            scheduler,
            body_factory,
            admission=admission,
            autoscaler=autoscaler,
            autoscale_every_ns=autoscale_every_ns,
        )
        outcome = harness.run(schedule)
        if chaos:
            platform.disable_fault_injection()
        if watchdog is not None:
            watchdog.evaluate_now()
        # Acked-state audit: every account's balance delta must equal
        # the updates clients counted as acknowledged — no loss, and
        # (at-most-once) no double application either.
        lost = 0
        dup = 0
        total_balance = 0
        for key in sorted(acked):
            balance = migrator.lookup(key).get_balance()
            total_balance += balance
            delta = balance - 100
            lost += max(0, acked[key] - delta)
            dup += max(0, delta - acked[key])
    shed_counts = outcome.shed_counts()
    if admission is not None:
        # Backpressure/queue-full sheds counted by the controller but
        # surfaced through OverloadError are already in the harness
        # tally; cross-check against the controller's own stats.
        shed_counts = dict(admission.stats.shed)
    breached = []
    alerts = 0
    if watchdog is not None:
        verdicts = watchdog.verdicts()
        breached = sorted(
            name for name, v in verdicts.items() if v["status"] == "breached"
        )
        alerts = len(watchdog.alerts)
    return TrafficRunResult(
        label=label or f"{mode}@{rate_per_s:.0f}rps",
        mode=mode,
        offered_rps=offered_rate_per_s(schedule),
        requests=len(schedule),
        completed=len(outcome.completions),
        shed={k: v for k, v in sorted(shed_counts.items()) if v},
        p50_ms=outcome.latency_percentile(50.0) / 1e6,
        p95_ms=outcome.latency_percentile(95.0) / 1e6,
        p99_ms=outcome.latency_percentile(99.0) / 1e6,
        makespan_s=outcome.makespan_ns / 1e9,
        fallback_share=pool.stats.fallback_share() if pool else 0.0,
        final_shards=group.n_shards,
        scale_events=autoscaler.trace() if autoscaler else [],
        migration=migrator.stats.to_dict(),
        slo_breached=breached,
        slo_alerts=alerts,
        lost_acked=lost,
        dup_applied=dup,
        checksum=(
            total_balance,
            totals["keeper_ok"],
            totals["paldb_records"],
        ),
        trace_digest=scheduler.trace_digest(),
        now_s=platform.now_s,
        ledger={k: tuple(v) for k, v in platform.snapshot().items()},
    )


def run_sequential_baseline(
    rate_per_s: float,
    n_requests: int,
    seed: int = DEFAULT_SEED,
    keys_per_app: int = 6,
) -> Tuple[Dict[str, Tuple[int, float]], float, Tuple[Any, ...]]:
    """The same schedule the pre-harness way: every session spawned up
    front at its arrival timestamp, then ``scheduler.run()``.

    Returns (ledger, now_s, checksum) for the zero-cost comparison. The
    harness's claim is that its arrival-by-arrival merge loop replays
    this run *byte-identically* — same step sequence, same charge
    order, so even floating-point accumulation matches.
    """
    schedule = WorkloadGenerator(
        rate_per_s, seed=seed, keys_per_app=keys_per_app
    ).generate(n_requests)
    app = _partitioned()
    platform = app.platform
    with app.start() as session:
        group = ShardedEnclaveGroup(session, 1, router="ring")
        migrator = ShardMigrator(group)
        acked: Dict[str, int] = {}
        for slot in range(keys_per_app):
            key = f"bank-{slot}"
            acked[key] = 0
            migrator.manage(
                key,
                factory=lambda k=key: Account(k, 100),
                capture=lambda account: account.get_balance(),
                apply=_restore_balance,
            )
        vaults = {
            f"keeper-{slot}": group.create_pinned(
                f"keeper-{slot}",
                lambda s=slot: PayloadVault(f"master-{s}"),
            )
            for slot in range(keys_per_app)
        }
        totals = {"keeper_ok": 0, "paldb_records": 0}
        # Same prefix as run_traffic: relay payload sizes include the
        # store path, so path lengths must match for ledger identity.
        workdir = tempfile.mkdtemp(prefix="traffic_")
        scheduler = SessionScheduler(platform, seed=seed)
        for request in schedule:
            if request.app == "bank":
                body = _bank_body(migrator, acked, request)
            elif request.app == "keeper":
                body = _keeper_body(vaults, totals, request)
            else:
                body = _paldb_body(group, totals, workdir, request)
            scheduler.spawn(
                f"r{request.rid}", body, start_ns=request.arrival_ns
            )
        scheduler.run()
        total_balance = sum(
            migrator.lookup(key).get_balance() for key in sorted(acked)
        )
        checksum = (total_balance, totals["keeper_ok"], totals["paldb_records"])
    return (
        {k: tuple(v) for k, v in platform.snapshot().items()},
        platform.now_s,
        checksum,
    )


def check_zero_cost(
    rate_per_s: float = 2_000.0,
    n_requests: int = 30,
    seed: int = DEFAULT_SEED,
) -> bool:
    """Harness with admission+autoscaler off vs the sequential loop:
    ledger, clock and checksums must be byte-identical."""
    seq_ledger, seq_now, seq_checksum = run_sequential_baseline(
        rate_per_s, n_requests, seed=seed
    )
    plain = run_traffic(
        "plain", rate_per_s, n_requests, seed=seed, label="harness-off"
    )
    return (
        seq_ledger == plain.ledger
        and seq_now == plain.now_s
        and seq_checksum == plain.checksum
    )


def run_traffic_ablation(
    rates: Tuple[float, ...] = DEFAULT_RATES,
    n_requests: int = 120,
    diurnal_requests: int = 200,
    chaos_requests: int = 60,
    seed: int = DEFAULT_SEED,
    slo_p95_ms: float = DEFAULT_SLO_P95_MS,
    stamp_requests: int = 0,
) -> TrafficReport:
    """The full sweep: load curve, diurnal hysteresis, chaos, zero-cost."""
    latency = ExperimentTable(
        title="Open-loop p95 latency vs offered load",
        x_label="offered load (requests per virtual second)",
        y_label="p95 completion latency (ms)",
    )
    fixed_series = latency.new_series("fixed-1-shard")
    auto_series = latency.new_series("autoscaled")
    report = TrafficReport(latency=latency, seed=seed, slo_p95_ms=slo_p95_ms)
    for rate in rates:
        fixed = run_traffic("fixed", rate, n_requests, seed=seed)
        auto = run_traffic("autoscaled", rate, n_requests, seed=seed)
        fixed_series.add(rate, fixed.p95_ms)
        auto_series.add(rate, auto.p95_ms)
        report.results.extend([fixed, auto])
    top = max(rates)
    for mode, series in (("fixed", fixed_series), ("autoscaled", auto_series)):
        top_p95 = [y for x, y in series.points if x == top][0]
        report.slo_holds[mode] = top_p95 <= slo_p95_ms
    report.hysteresis = run_traffic(
        "autoscaled",
        max(rates),
        diurnal_requests,
        seed=seed + 1,
        diurnal_amplitude=0.85,
        label="diurnal",
    )
    report.chaos = run_traffic(
        "autoscaled",
        max(rates),
        chaos_requests,
        seed=seed + 2,
        chaos=True,
        label="chaos-mid-migration",
    )
    report.zero_cost_identical = check_zero_cost(seed=seed)
    if stamp_requests:
        stamped = WorkloadGenerator(50_000.0, seed=seed).generate(
            stamp_requests
        )
        report.stamped_requests = len(stamped)
        report.stamped_rps = offered_rate_per_s(stamped)
    return report


def run_quick() -> TrafficReport:
    """CI-sized sweep (the ``--quick`` flag)."""
    return run_traffic_ablation(
        rates=QUICK_RATES,
        n_requests=70,
        diurnal_requests=200,
        chaos_requests=40,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro traffic [--quick] [--out PATH]``."""
    import argparse
    import os
    import sys

    parser = argparse.ArgumentParser(
        prog="repro traffic",
        description=(
            "open-loop traffic harness + elastic shard autoscaler ablation"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized sweep (2 rates, fewer requests)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=os.path.join("results", "traffic.json"),
        help="artifact path (default: results/traffic.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        report = run_quick()
    else:
        report = run_traffic_ablation(stamp_requests=100_000)
    print(report.format())
    print(f"fingerprint: {report.fingerprint()}")
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    report.write_artifact(args.out)
    print(f"artifact: {args.out}", file=sys.stderr)
    return 0
