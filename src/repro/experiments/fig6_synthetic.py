"""Fig. 6 — synthetic application runtime vs %untrusted classes (§6.5).

A generated application (default 100 classes) whose instance methods
are all CPU-intensive or all I/O-intensive; the fraction of @untrusted
classes sweeps 0..100%. Expected shape: runtime falls monotonically as
classes leave the enclave, for both workloads.
"""

from __future__ import annotations

import tempfile
from typing import Sequence

from repro.apps.generator import generate_app
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions
from repro.experiments.common import ExperimentTable
from repro.graal.jtypes import TrustLevel

DEFAULT_PERCENTAGES = tuple(range(0, 101, 10))
DEFAULT_CLASSES = 100

_run_counter = [0]


def _run_generated(workload: str, pct_untrusted: int, n_classes: int) -> float:
    _run_counter[0] += 1
    tag = f"r{_run_counter[0]}p{pct_untrusted}"
    app_spec = generate_app(
        n_classes=n_classes, pct_untrusted=pct_untrusted, workload=workload, tag=tag
    )
    workdir = tempfile.mkdtemp(prefix="fig6_")
    if pct_untrusted >= 100:
        # No trusted classes remain: the whole application runs outside.
        with native_session(name=f"fig6_{tag}") as session:
            app_spec.drive(workdir)
            return session.platform.now_s
    partitioner = Partitioner(PartitionOptions(name=f"fig6_{tag}"))
    app = partitioner.partition(list(app_spec.classes))
    with app.start() as session:
        app_spec.drive(workdir)
        return session.platform.now_s


def run_fig6(
    percentages: Sequence[int] = DEFAULT_PERCENTAGES,
    n_classes: int = DEFAULT_CLASSES,
) -> ExperimentTable:
    table = ExperimentTable(
        title="Fig. 6 — runtime vs percentage of untrusted classes",
        x_label="untrusted (%)",
        y_label="runtime (s)",
        notes=f"{n_classes} generated classes; one method call per class",
    )
    for workload in ("cpu", "io"):
        series = table.new_series(f"{workload} intensive")
        for pct in percentages:
            series.add(pct, _run_generated(workload, pct, n_classes))
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_fig6().format())


if __name__ == "__main__":  # pragma: no cover
    main()
