"""Fig. 5 — garbage collection performance and consistency (§6.4).

(a) Total GC time in and out of the enclave: create objects, make them
    eligible, invoke the collector. The enclave's stop-and-copy
    traffic through the MEE adds about an order of magnitude.
(b) Consistency timeline: proxies created/destroyed in the untrusted
    runtime; the number of live proxies outside tracks the number of
    mirrors registered inside as the GC helper scans.
"""

from __future__ import annotations

import gc as _python_gc
from typing import Sequence

from repro.core import Partitioner, PartitionOptions, Side
from repro.costs.platform import fresh_platform
from repro.experiments.common import ExperimentTable
from repro.experiments.micro import MICRO_CLASSES, TrustedCell
from repro.runtime.context import ExecutionContext, Location
from repro.runtime.heap import SimHeap

DEFAULT_COUNTS = tuple(range(50_000, 500_001, 50_000))
#: Simulated object footprint in the GC experiment.
OBJECT_BYTES = 64


def run_fig5a(counts: Sequence[int] = DEFAULT_COUNTS) -> ExperimentTable:
    table = ExperimentTable(
        title="Fig. 5a — total GC time in and out of the enclave",
        x_label="objects",
        y_label="GC time (s)",
        notes="serial stop-and-copy; half the objects live at collection",
    )
    scenarios = {
        "concrete-out: GC out": Location.HOST,
        "concrete-in: GC in": Location.ENCLAVE,
    }
    for name, location in scenarios.items():
        series = table.new_series(name)
        for count in counts:
            platform = fresh_platform()
            ctx = ExecutionContext(platform, location, label="fig5a")
            heap = SimHeap(ctx, max_bytes=1 << 34, name="fig5a")
            refs = [heap.alloc(OBJECT_BYTES) for _ in range(count)]
            for ref in refs[::2]:
                heap.free(ref)
            series.add(count, heap.collect() / 1e9)
    return table


def run_fig5b(
    duration_s: float = 60.0,
    batch: int = 500,
    create_phase_s: float = 30.0,
) -> ExperimentTable:
    """Timeline of live proxies (untrusted) vs registered mirrors
    (enclave): creation for the first phase, destruction after."""
    table = ExperimentTable(
        title="Fig. 5b — GC consistency between proxies and mirrors",
        x_label="timestamp (s)",
        y_label="objects",
        notes="GC helper scan every virtual second",
    )
    proxies_series = table.new_series("proxy-objs-out")
    mirrors_series = table.new_series("mirror-objs-in")

    options = PartitionOptions(name="fig5b", gc_helper_period_s=1.0)
    app = Partitioner(options).partition(list(MICRO_CLASSES))
    with app.start() as session:
        platform = session.platform
        live = []
        tick = 0
        while platform.now_s < duration_s:
            tick += 1
            if platform.now_s < create_phase_s:
                live.extend(TrustedCell(i) for i in range(batch))
            else:
                del live[: max(1, len(live) // 3)]
                _python_gc.collect()
            # Let virtual time reach the next GC-helper period, then
            # drive both helpers' periodic scans explicitly.
            target = tick * 1.0
            if platform.now_s < target:
                platform.charge_ns("fig5b.idle", (target - platform.now_s) * 1e9)
            for helper in session.gc_helpers.values():
                helper.scan_once()
            timestamp = platform.now_s
            proxies_series.add(
                timestamp,
                session.runtime.state_of(Side.UNTRUSTED).tracker.live_count(),
            )
            mirrors_series.add(
                timestamp,
                session.runtime.state_of(Side.TRUSTED).registry.live_count(),
            )
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_fig5a().format())
    print()
    print(run_fig5b().format(y_format="{:.0f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
