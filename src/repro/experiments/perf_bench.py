"""``python -m repro perf`` — the wall-clock BENCH trajectory harness.

Runs a fixed, seeded workload suite through the full simulator stack
and measures how fast the *simulator itself* executes it:

- ``bank_stream``       — 4 bank sessions × 2 shards × 2 workers;
- ``securekeeper_mix``  — the SecureKeeper session mix, same topology;
- ``scale_grid``        — the sessions × shards scaling grid;
- ``wire_codec``        — the explicit wire format round-tripping
  representative RMI payloads (the boundary codec in isolation);
- ``overload``          — 8 SecureKeeper sessions against 1 switchless
  worker, run with observability + the default SLO rulebook attached:
  the pool saturates, the ``pool-fallback-burn`` rule fires, and the
  alert lands in both the span stream and the ``slo@1`` report.

Each workload runs ``repeats`` times under :class:`SimulatorHooks`, so
the entry records per-subsystem wall-clock shares next to requests/sec
and p50/p95 repeat latency. The *virtual-time fingerprint* (ledgers,
interleaving digests, checksums, clocks) must be identical across
repeats — wall time may wobble, simulated work may not — and the run
aborts if it is not.

Results append to the tracked ``BENCH_perf.json`` (see
:mod:`repro.obs.bench`); per-run profiler dumps go under
``results/perf/`` and stay untracked. Exit status is non-zero when any
workload falls below the requests/sec floor or regresses beyond
tolerance against the previous trajectory entry.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.scaling_exp import DEFAULT_SEED, run_scale
from repro.obs import bench
from repro.obs.perf import SimulatorHooks, WallProfiler
from repro.obs.recorder import RunRecorder, recording
from repro.obs.slo import SloWatchdog, default_rulebook

DEFAULT_BENCH_PATH = bench.DEFAULT_PATH
DEFAULT_PROFILE_DIR = os.path.join("results", "perf")
DEFAULT_TOLERANCE = 0.25
#: Absolute wall-clock floor, simulated requests per second. Deliberately
#: far below any healthy machine (local runs measure tens of thousands);
#: it exists to catch catastrophic slowdowns, not wobble.
DEFAULT_FLOOR_RPS = 200.0
DEFAULT_REPEATS = 3
QUICK_REPEATS = 2


# -- workload definitions -----------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """One named, seeded unit of simulator work."""

    name: str
    description: str
    #: Returns (requests, runs) for one execution; ``runs`` is the list
    #: of :class:`ScaleRunResult` s the fingerprint hashes.
    body: Callable[[int], Tuple[int, List[Any]]]
    #: Run with observability + the SLO watchdog attached.
    observed: bool = False


def _bank_stream(quick: bool) -> Workload:
    rounds = 6 if quick else 12

    def body(seed: int) -> Tuple[int, List[Any]]:
        result = run_scale(
            "bank", sessions=4, shards=2, workers=2, rounds=rounds, seed=seed
        )
        return result.ops, [result]

    return Workload(
        "bank_stream",
        f"4 bank sessions x 2 shards x 2 workers, {rounds} rounds",
        body,
    )


def _securekeeper_mix(quick: bool) -> Workload:
    entries = 6 if quick else 8

    def body(seed: int) -> Tuple[int, List[Any]]:
        result = run_scale(
            "securekeeper",
            sessions=4,
            shards=2,
            workers=2,
            entries=entries,
            seed=seed,
        )
        return result.ops, [result]

    return Workload(
        "securekeeper_mix",
        f"4 SecureKeeper sessions x 2 shards x 2 workers, {entries} entries",
        body,
    )


def _scale_grid(quick: bool) -> Workload:
    sessions = (1, 4) if quick else (1, 2, 4, 8)
    shards = (1, 2)
    rounds = 4 if quick else 8

    def body(seed: int) -> Tuple[int, List[Any]]:
        requests = 0
        runs = []
        for n_sessions in sessions:
            for n_shards in shards:
                result = run_scale(
                    "bank",
                    sessions=n_sessions,
                    shards=n_shards,
                    workers=2,
                    rounds=rounds,
                    seed=seed,
                )
                requests += result.ops
                runs.append(result)
        return requests, runs

    return Workload(
        "scale_grid",
        f"bank grid: sessions {list(sessions)} x shards {list(shards)}",
        body,
    )


def _wire_codec(quick: bool) -> Workload:
    messages = 400 if quick else 2_000

    def body(seed: int) -> Tuple[int, List[Any]]:
        from repro.core import wire

        digest = hashlib.sha256()
        total = 0
        for i in range(messages):
            payload = {
                "routine": f"update_balance_{i % 7}",
                "args": [i, float(i) * 1.5, f"s{seed}-a{i % 11}"],
                "kwargs": {"audit": i % 2 == 0, "blob": b"x" * (i % 64)},
            }
            blob = wire.dumps(payload)
            total += len(blob)
            if wire.loads(blob) != payload:
                raise RuntimeError("wire codec round-trip mismatch")
            digest.update(blob)
        # No platform is involved: the "virtual" signature is the exact
        # byte stream the codec produced.
        run = SimpleNamespace(
            trace_digest=digest.hexdigest(),
            now_s=0.0,
            checksum=(total,),
            ledger={},
        )
        return messages, [run]

    return Workload(
        "wire_codec",
        f"wire-format encode/decode of {messages} RMI-shaped payloads",
        body,
    )


def _overload(quick: bool) -> Workload:
    entries = 6 if quick else 8

    def body(seed: int) -> Tuple[int, List[Any]]:
        result = run_scale(
            "securekeeper",
            sessions=8,
            shards=2,
            workers=1,
            entries=entries,
            seed=seed,
        )
        return result.ops, [result]

    return Workload(
        "overload",
        "8 SecureKeeper sessions vs 1 switchless worker (pool saturated; "
        "observability + SLO watchdog attached)",
        body,
        observed=True,
    )


def workload_suite(quick: bool) -> List[Workload]:
    return [
        _bank_stream(quick),
        _securekeeper_mix(quick),
        _scale_grid(quick),
        _wire_codec(quick),
        _overload(quick),
    ]


# -- measurement --------------------------------------------------------------


def virtual_fingerprint(runs: Sequence[Any]) -> str:
    """Digest of everything virtual about a workload execution: same
    seed must give the same fingerprint on every run and machine."""
    payload = [
        {
            "trace": run.trace_digest,
            "now": run.now_s,
            "checksum": list(run.checksum),
            "ledger": {k: list(v) for k, v in sorted(run.ledger.items())},
        }
        for run in runs
    ]
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (rank - lo) * (sorted_values[hi] - sorted_values[lo])


@dataclass
class WorkloadMeasurement:
    """One workload's aggregated result across repeats."""

    name: str
    description: str
    requests: int
    repeats: int
    wall_ms: List[float]
    virtual_fingerprint: str
    profile: Dict[str, Any]
    slo: Optional[Dict[str, Any]] = None

    @property
    def total_wall_s(self) -> float:
        return sum(self.wall_ms) / 1e3

    @property
    def requests_per_sec(self) -> float:
        total = self.total_wall_s
        return (self.requests * self.repeats) / total if total else 0.0

    @property
    def p50_ms(self) -> float:
        return _percentile(sorted(self.wall_ms), 50.0)

    @property
    def p95_ms(self) -> float:
        return _percentile(sorted(self.wall_ms), 95.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "description": self.description,
            "requests": self.requests,
            "repeats": self.repeats,
            "requests_per_sec": round(self.requests_per_sec, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "hotspots": self.profile["hotspots"],
            "shares": {
                name: round(share, 4)
                for name, share in self.profile["shares"].items()
            },
            "virtual_fingerprint": self.virtual_fingerprint,
        }


def measure_workload(
    workload: Workload,
    seed: int,
    repeats: int,
    watchdog: Optional[SloWatchdog] = None,
) -> WorkloadMeasurement:
    """Run one workload ``repeats`` times under the profiler hooks.

    Raises ``RuntimeError`` when the virtual fingerprint differs across
    repeats — the suite's determinism guarantee.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    profiler = WallProfiler()
    wall_ms: List[float] = []
    fingerprints: List[str] = []
    slo_report: Optional[Dict[str, Any]] = None
    for repeat in range(repeats):
        with SimulatorHooks(profiler):
            with profiler.profile_section(workload.name):
                started = time.perf_counter_ns()
                if workload.observed:
                    recorder = RunRecorder(
                        slo=watchdog or SloWatchdog(default_rulebook())
                    )
                    with recording(recorder):
                        requests, runs = workload.body(seed)
                    slo_report = recorder.slo_report()
                else:
                    requests, runs = workload.body(seed)
                elapsed_ns = time.perf_counter_ns() - started
        wall_ms.append(elapsed_ns / 1e6)
        fingerprints.append(virtual_fingerprint(runs))
    if len(set(fingerprints)) != 1:
        raise RuntimeError(
            f"workload {workload.name!r} is not deterministic: virtual "
            f"fingerprints differ across repeats: {fingerprints}"
        )
    return WorkloadMeasurement(
        name=workload.name,
        description=workload.description,
        requests=requests,
        repeats=repeats,
        wall_ms=wall_ms,
        virtual_fingerprint=fingerprints[0],
        profile=profiler.to_dict(top=5),
        slo=slo_report,
    )


# -- the report ---------------------------------------------------------------


@dataclass
class PerfReport:
    """Full suite output: measurements + trajectory comparison."""

    mode: str
    seed: int
    measurements: List[WorkloadMeasurement] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    drift: List[str] = field(default_factory=list)

    def slo_report(self) -> Optional[Dict[str, Any]]:
        for measurement in self.measurements:
            if measurement.slo is not None:
                return measurement.slo
        return None

    def to_entry(self, commit: str) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "commit": commit,
            "mode": self.mode,
            "seed": self.seed,
            "workloads": {
                m.name: m.to_dict() for m in self.measurements
            },
        }
        slo = self.slo_report()
        if slo is not None:
            entry["slo"] = {
                "alerts": len(slo["alerts"]),
                "breached": sorted(
                    name
                    for name, verdict in slo["verdicts"].items()
                    if verdict["status"] == "breached"
                ),
            }
        return entry

    def format(self) -> str:
        lines = [
            f"perf suite ({self.mode}, seed={self.seed})",
            f"{'workload':<18} {'req/s':>10} {'p50 ms':>9} "
            f"{'p95 ms':>9}  top hotspot",
        ]
        for m in self.measurements:
            hotspots = m.profile["hotspots"]
            top = hotspots[0]["path"] if hotspots else "-"
            lines.append(
                f"{m.name:<18} {m.requests_per_sec:>10.0f} "
                f"{m.p50_ms:>9.2f} {m.p95_ms:>9.2f}  {top}"
            )
            lines.append(f"    fingerprint {m.virtual_fingerprint[:16]}…")
        slo = self.slo_report()
        if slo is not None:
            breached = [
                name
                for name, verdict in sorted(slo["verdicts"].items())
                if verdict["status"] == "breached"
            ]
            lines.append(
                f"SLO: {len(slo['alerts'])} alert(s); breached: "
                f"{', '.join(breached) if breached else 'none'}"
            )
        for note in self.drift:
            lines.append(f"note: {note}")
        for problem in self.problems:
            lines.append(f"FAIL: {problem}")
        return "\n".join(lines)


def run_perf(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    repeats: Optional[int] = None,
) -> PerfReport:
    """Execute the suite and return the (uncompared) report."""
    mode = "quick" if quick else "full"
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS
    report = PerfReport(mode=mode, seed=seed)
    for workload in workload_suite(quick):
        report.measurements.append(measure_workload(workload, seed, repeats))
    return report


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def write_profiles(report: PerfReport, profile_dir: str) -> List[str]:
    """Per-workload flame + perf@1 dumps (untracked, under results/)."""
    os.makedirs(profile_dir, exist_ok=True)
    written = []
    for m in report.measurements:
        perf_path = os.path.join(profile_dir, f"{m.name}.perf.json")
        with open(perf_path, "w") as handle:
            json.dump(m.profile, handle, indent=2)
            handle.write("\n")
        written.append(perf_path)
        collapsed_path = os.path.join(profile_dir, f"{m.name}.collapsed.txt")
        tree_lines = []
        _collapse(m.profile["tree"], (), tree_lines)
        with open(collapsed_path, "w") as handle:
            handle.write("\n".join(tree_lines) + ("\n" if tree_lines else ""))
        written.append(collapsed_path)
    slo = report.slo_report()
    if slo is not None:
        slo_path = os.path.join(profile_dir, "slo.json")
        with open(slo_path, "w") as handle:
            json.dump(slo, handle, indent=2, default=str)
            handle.write("\n")
        written.append(slo_path)
    return written


def _collapse(
    nodes: List[Dict[str, Any]], path: Tuple[str, ...], out: List[str]
) -> None:
    for node in nodes:
        node_path = path + (node["name"],)
        if node["self_ns"] > 0:
            out.append(f"{';'.join(node_path)} {node['self_ns']}")
        _collapse(node["children"], node_path, out)


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description=(
            "wall-clock benchmark suite: appends to the BENCH trajectory "
            "and gates on floor/regression"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller suite for CI smoke (fewer rounds/repeats)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="wall-clock repeats per workload (default 3, quick 2)",
    )
    parser.add_argument(
        "--bench",
        default=DEFAULT_BENCH_PATH,
        help=f"trajectory file (default {DEFAULT_BENCH_PATH}, tracked)",
    )
    parser.add_argument(
        "--profile-dir",
        default=DEFAULT_PROFILE_DIR,
        help=f"per-run profiler dumps (default {DEFAULT_PROFILE_DIR}, ignored)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR_RPS,
        help="absolute requests/sec floor every workload must clear",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional req/s drop vs the previous entry",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and compare, but leave the trajectory file alone",
    )
    args = parser.parse_args(argv)

    report = run_perf(quick=args.quick, seed=args.seed, repeats=args.repeats)

    doc = bench.load_bench(args.bench)
    entry = report.to_entry(_current_commit())
    previous = bench.append_entry(doc, entry)
    report.problems = bench.compare(
        entry, previous, tolerance=args.tolerance, floor_rps=args.floor
    )
    report.drift = bench.fingerprint_drift(entry, previous)

    if not args.no_write:
        bench.write_bench(args.bench, doc)
        written = write_profiles(report, args.profile_dir)
        print(report.format())
        print(f"-- trajectory: {args.bench} ({len(doc['entries'])} entries)")
        print(f"-- profiles: {', '.join(written)}")
    else:
        print(report.format())
    return 1 if report.problems else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
