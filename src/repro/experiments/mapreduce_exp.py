"""Extra experiment — VC3-style MapReduce across deployments ([44], §3).

Word count over sealed records in four deployments. Unlike the
SecureKeeper split, this partitioning is *coarse* — one relay per map
split / reduce partition — so plain Montsalvat partitioning already
wins: the framework's shuffle stays outside while only the user's
map/reduce code pays enclave prices.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.mapreduce import (
    MAPREDUCE_CLASSES,
    JobTracker,
    TrustedMapper,
    TrustedReducer,
    run_wordcount,
    wordcount_reference,
)
from repro.baselines import native_session, scone_jvm_session
from repro.core import Partitioner, PartitionOptions
from repro.experiments.common import ExperimentTable

DEFAULT_LINE_COUNTS = (200, 600, 1_200)


def _make_lines(count: int) -> list:
    return [
        f"record {index % 50} with shared tokens alpha beta gamma delta"
        for index in range(count)
    ]


def run_mapreduce(line_counts: Sequence[int] = DEFAULT_LINE_COUNTS) -> ExperimentTable:
    table = ExperimentTable(
        title="VC3-style MapReduce — word count across deployments",
        x_label="input lines",
        y_label="run time (s)",
        notes="coarse partitioning: one relay per split/partition",
    )
    configurations = {
        "NoSGX": lambda: native_session(name="vc3"),
        "Part (map/reduce in enclave)": lambda: Partitioner(
            PartitionOptions(name="vc3_part")
        )
        .partition(list(MAPREDUCE_CLASSES))
        .start(),
        "Unpart (all in enclave)": lambda: Partitioner(
            PartitionOptions(name="vc3_nopart")
        )
        .unpartitioned([TrustedMapper, TrustedReducer, JobTracker])
        .start(),
        "SCONE+JVM": lambda: scone_jvm_session(name="vc3_scone"),
    }
    for name, factory in configurations.items():
        series = table.new_series(name)
        for count in line_counts:
            lines = _make_lines(count)
            with factory() as session:
                results = run_wordcount(lines, n_splits=4)
                assert results == wordcount_reference(lines)
                series.add(count, session.platform.now_s)
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_mapreduce().format(y_format="{:.4f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
