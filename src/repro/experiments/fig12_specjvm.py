"""Fig. 12 / Table 1 — SPECjvm2008 micro-benchmarks in enclaves (§6.6).

Each kernel runs in four configurations: NoSGX+JVM, NoSGX-NI, SGX-NI
(unpartitioned native image in the enclave) and SCONE+JVM. Table 1 is
the per-kernel latency gain of SGX-NI over SCONE+JVM.

Expected shape: the native image wins everywhere except Monte_Carlo,
where the native image's serial GC loses to HotSpot's collectors
(paper: 2.12 / 2.66 / 0.25 / 1.42 / 1.46 / 1.38 x).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.apps.specjvm import KERNELS
from repro.apps.specjvm.kernels import KERNEL_ORDER
from repro.baselines import host_jvm_session, native_session, scone_jvm_session
from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import ambient_context
from repro.experiments.common import ExperimentTable

#: Paper's Table 1 values, for EXPERIMENTS.md comparisons.
PAPER_TABLE1 = {
    "mpegaudio": 2.12,
    "fft": 2.66,
    "monte_carlo": 0.25,
    "sor": 1.42,
    "lu": 1.46,
    "sparse": 1.38,
}


class _KernelHost:
    """Placeholder application class for the unpartitioned image."""

    def run(self) -> None:
        """Entry point the image is built around."""


def _configurations() -> Dict[str, Callable]:
    return {
        "NoSGX+JVM": lambda: host_jvm_session(name="specjvm"),
        "NoSGX-NI": lambda: native_session(name="specjvm"),
        "SGX-NI": lambda: Partitioner(PartitionOptions(name="specjvm"))
        .unpartitioned([_KernelHost])
        .start(),
        "SCONE+JVM": lambda: scone_jvm_session(name="specjvm"),
    }


def run_fig12(kernels: Sequence[str] = KERNEL_ORDER) -> ExperimentTable:
    table = ExperimentTable(
        title="Fig. 12 — SPECjvm2008 micro-benchmarks (default workloads)",
        x_label="kernel",
        y_label="run time (s)",
        notes="x positions are kernel indexes in Table 1 order",
    )
    for config_name, factory in _configurations().items():
        series = table.new_series(config_name)
        for index, kernel_name in enumerate(kernels):
            with factory() as session:
                KERNELS[kernel_name].run(ambient_context())
                series.add(index, session.platform.now_s)
    table.notes += "; kernels: " + ", ".join(kernels)
    return table


def run_table1(kernels: Sequence[str] = KERNEL_ORDER) -> Dict[str, float]:
    """Table 1 — SGX-NI latency gain over SCONE+JVM per kernel."""
    fig12 = run_fig12(kernels)
    scone = fig12.get("SCONE+JVM")
    sgx_ni = fig12.get("SGX-NI")
    return {
        kernel: scone.y_at(index) / sgx_ni.y_at(index)
        for index, kernel in enumerate(kernels)
    }


def main() -> None:  # pragma: no cover - manual entry point
    table = run_fig12()
    print(table.format(y_format="{:.2f}"))
    print()
    print("Table 1 — latency gain of SGX-NI over SCONE+JVM")
    ratios = run_table1()
    for kernel, ratio in ratios.items():
        print(f"  {kernel:<12} {ratio:5.2f}x   (paper: {PAPER_TABLE1[kernel]:.2f}x)")


if __name__ == "__main__":  # pragma: no cover
    main()
