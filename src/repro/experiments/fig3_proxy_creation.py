"""Fig. 3 — performance of proxy vs concrete object creation (§6.2).

Four scenarios over increasing object counts:

- ``concrete-out``: untrusted objects created from the untrusted side;
- ``concrete-in``: trusted objects created inside the enclave;
- ``proxy-out->in``: trusted objects created from the untrusted side
  (proxy + ecall + in-enclave mirror);
- ``proxy-in->out``: untrusted objects created from inside the enclave
  (proxy + ocall + outside mirror).

Expected shape: proxy creation sits 3-4 orders of magnitude above
concrete creation, transitions dominating.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import Partitioner, PartitionOptions, Side
from repro.experiments.common import ExperimentTable
from repro.experiments.micro import MICRO_CLASSES, TrustedCell, UntrustedCell

DEFAULT_COUNTS = tuple(range(10_000, 100_001, 10_000))


def run_fig3(counts: Sequence[int] = DEFAULT_COUNTS) -> ExperimentTable:
    table = ExperimentTable(
        title="Fig. 3 — proxy vs concrete object creation",
        x_label="objects",
        y_label="latency (s)",
        notes="virtual time; proxy curves include transition + mirror creation",
    )
    scenarios = {
        "proxy-out->in": (TrustedCell, Side.UNTRUSTED),
        "proxy-in->out": (UntrustedCell, Side.TRUSTED),
        "concrete-out": (UntrustedCell, Side.UNTRUSTED),
        "concrete-in": (TrustedCell, Side.TRUSTED),
    }
    for name, (cls, side) in scenarios.items():
        series = table.new_series(name)
        for count in counts:
            app = Partitioner(PartitionOptions(name=f"fig3_{name}")).partition(
                list(MICRO_CLASSES)
            )
            with app.start() as session:
                with session.on_side(side):
                    span = session.platform.measure()
                    objects = [cls(i) for i in range(count)]
                    series.add(count, span.elapsed_s())
                del objects
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_fig3().format())


if __name__ == "__main__":  # pragma: no cover
    main()
