"""Batching ablation: batch size × workload (crossings, time, durability).

Every enclave crossing pays a fixed toll — the hardware transition plus
the GraalVM isolate attach (§2.1, Fig. 3/4) — so a chatty call site's
cost is dominated by *how many times* it crosses, not by the work it
carries. This experiment measures what trace-driven call coalescing
(:mod:`repro.batching`) buys and what it risks, across three workloads:

- **bank** — a stream of fire-and-forget ``update_balance`` ecalls on
  in-enclave accounts (the paper's Listing 1 example, worst-case chatty);
- **PalDB (RUWT)** — the §6.5 writer-trusted scheme driven record by
  record through ``put_record`` instead of the coarse ``write_all``;
- **SecureKeeper** — the vault's in-enclave audit trail
  (``record_access``), one entry per store operation.

For each batch size it reports:

- **crossing counts** — boundary transitions performed (batching elides
  ``calls - 1`` of every full batch);
- **virtual-time speedup** over the unbatched baseline, results
  verified identical;
- **durability** — with a seeded mid-call enclave crash, a batch of
  non-idempotent updates is refused replay *as a unit*: the larger the
  batch, the more silently-acknowledged updates one loss destroys.

``batch size = 1`` routes every flush through the ordinary unbatched
crossing path, so its ledger is byte-identical to batching disabled —
the report records that check (``identical``) and the CI smoke job
fingerprints the whole sweep for determinism.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.bank import Account, BANK_CLASSES
from repro.apps.paldb import KvWorkload
from repro.apps.paldb.workload import (
    PALDB_RUWT_CLASSES,
    TrustedDBWriter,
    UntrustedDBReader,
)
from repro.apps.securekeeper import (
    SECUREKEEPER_CLASSES,
    PayloadVault,
    SecureKeeperClient,
    ZNodeStore,
)
from repro.batching import BatchPolicy, attach_batching
from repro.core import Partitioner, PartitionOptions
from repro.errors import NonIdempotentReplayError, RetryExhaustedError
from repro.experiments.common import ExperimentTable
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultRule,
    RetryPolicy,
    attach_recovery,
)
from repro.obs.artifacts import run_artifact, write_artifact

#: ``None`` is the unbatched baseline; the rest sweep the policy size.
DEFAULT_BATCH_SIZES: Tuple[Optional[int], ...] = (None, 1, 4, 16, 64)
DEFAULT_DURABILITY_SIZES: Tuple[Optional[int], ...] = (None, 1, 2, 4, 8)
DEFAULT_SEED = 7_177

#: One virtual second: wide enough that the window trigger never fires
#: inside the tight sweep loops — batch-full and barriers do the work.
_SWEEP_WINDOW_NS = 1e9

WORKLOADS = ("bank", "paldb", "securekeeper")


@dataclass
class BatchRunResult:
    """One (workload, batch size) measurement."""

    workload: str
    batch_size: Optional[int]  # None = batching disabled
    ops: int
    elapsed_s: float
    crossings: int
    batch_crossings: int
    batched_calls: int
    checksum: Tuple[Any, ...]
    batch_stats: Optional[Dict[str, Any]]
    ledger: Dict[str, Tuple[int, float]]

    @property
    def label(self) -> str:
        return "unbatched" if self.batch_size is None else f"batch={self.batch_size}"

    @property
    def crossings_saved(self) -> int:
        return self.batched_calls - self.batch_crossings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "batch_size": self.batch_size,
            "ops": self.ops,
            "elapsed_s": self.elapsed_s,
            "crossings": self.crossings,
            "batch_crossings": self.batch_crossings,
            "batched_calls": self.batched_calls,
            "crossings_saved": self.crossings_saved,
            "checksum": list(self.checksum),
            "batch_stats": self.batch_stats,
        }


@dataclass
class DurabilityResult:
    """Bank run under one seeded mid-call crash, per batch size."""

    batch_size: Optional[int]
    updates: int
    acked: int
    observed: int
    visible_failures: int
    calls_refused: int
    enclave_losses: int

    @property
    def lost_acked(self) -> int:
        """Updates the caller believed applied that never landed."""
        return self.acked - self.observed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "batch_size": self.batch_size,
            "updates": self.updates,
            "acked": self.acked,
            "observed": self.observed,
            "visible_failures": self.visible_failures,
            "calls_refused": self.calls_refused,
            "enclave_losses": self.enclave_losses,
            "lost_acked": self.lost_acked,
        }


@dataclass
class BatchingReport:
    """Full ablation output: tables + raw per-run results."""

    speedup: ExperimentTable
    crossings: ExperimentTable
    durability: ExperimentTable
    results: List[BatchRunResult] = field(default_factory=list)
    durability_results: List[DurabilityResult] = field(default_factory=list)
    #: Per workload: is the batch-size-1 ledger byte-identical to the
    #: unbatched one (charges, counts, checksums all equal)?
    identical: Dict[str, bool] = field(default_factory=dict)
    seed: int = DEFAULT_SEED

    def best_speedup(self, workload: str) -> float:
        base = next(
            (
                r
                for r in self.results
                if r.workload == workload and r.batch_size is None
            ),
            None,
        )
        if base is None or base.elapsed_s == 0:
            return 1.0
        best = 1.0
        for r in self.results:
            if r.workload == workload and r.batch_size and r.elapsed_s:
                best = max(best, base.elapsed_s / r.elapsed_s)
        return best

    def format(self) -> str:
        parts = [
            self.speedup.format(y_format="{:.2f}"),
            "",
            self.crossings.format(y_format="{:.0f}"),
            "",
            self.durability.format(y_format="{:.0f}"),
            "",
        ]
        for workload in sorted(self.identical):
            ok = "identical" if self.identical[workload] else "DIVERGED"
            parts.append(f"{workload}: batch=1 vs unbatched ledger {ok}")
        parts.append(
            "-- seed=%d; best speedups: %s"
            % (
                self.seed,
                ", ".join(
                    f"{w} {self.best_speedup(w):.1f}x"
                    for w in WORKLOADS
                    if any(r.workload == w for r in self.results)
                ),
            )
        )
        return "\n".join(parts)

    def fingerprint(self) -> str:
        """Digest of every ledger, checksum and durability outcome.
        Same seed => same fingerprint (the CI smoke job asserts it)."""
        payload = {
            "seed": self.seed,
            "results": [
                {
                    **r.to_dict(),
                    "ledger": {k: list(v) for k, v in sorted(r.ledger.items())},
                }
                for r in self.results
            ],
            "durability": [d.to_dict() for d in self.durability_results],
            "identical": dict(sorted(self.identical.items())),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_artifact(self) -> Dict[str, Any]:
        return run_artifact(
            "batching",
            tables=[self.speedup, self.crossings, self.durability],
            extra={
                "batching": {
                    "seed": self.seed,
                    "fingerprint": self.fingerprint(),
                    "identical": dict(sorted(self.identical.items())),
                    "best_speedup": {
                        w: self.best_speedup(w)
                        for w in WORKLOADS
                        if any(r.workload == w for r in self.results)
                    },
                    "runs": [r.to_dict() for r in self.results],
                    "durability": [
                        d.to_dict() for d in self.durability_results
                    ],
                }
            },
        )

    def write_artifact(self, path: str) -> None:
        write_artifact(path, self.to_artifact())


def _policy(batch_size: int) -> BatchPolicy:
    return BatchPolicy(max_batch=batch_size, window_ns=_SWEEP_WINDOW_NS)


# -- workload runners ---------------------------------------------------------


def run_bank_batching(
    batch_size: Optional[int],
    n_accounts: int = 4,
    rounds: int = 48,
) -> BatchRunResult:
    """A stream of fire-and-forget balance updates, then audited reads."""
    app = Partitioner(PartitionOptions(name="batch_bank")).partition(
        list(BANK_CLASSES)
    )
    platform = app.platform
    with app.start() as session:
        accounts = [Account(f"acct-{i}", 100) for i in range(n_accounts)]
        coalescer = (
            attach_batching(session, _policy(batch_size))
            if batch_size is not None
            else None
        )
        started_s = platform.now_s
        crossings_before = session.transition_stats.crossings
        for round_no in range(rounds):
            for index, account in enumerate(accounts):
                account.update_balance(1 + ((round_no + index) % 3))
        # Data-dependent reads: drain the queue, then cross per account.
        balances = tuple(account.get_balance() for account in accounts)
        elapsed_s = platform.now_s - started_s
        stats = session.transition_stats
        batch_stats = coalescer.stats.to_dict() if coalescer is not None else None
        if coalescer is not None:
            coalescer.detach()
        return BatchRunResult(
            workload="bank",
            batch_size=batch_size,
            ops=n_accounts * rounds,
            elapsed_s=elapsed_s,
            crossings=stats.crossings - crossings_before,
            batch_crossings=stats.batch_crossings,
            batched_calls=stats.batched_calls,
            checksum=balances,
            batch_stats=batch_stats,
            ledger={k: tuple(v) for k, v in platform.snapshot().items()},
        )


def run_paldb_batching(
    batch_size: Optional[int],
    n_records: int = 64,
    value_length: int = 32,
    seed: int = DEFAULT_SEED,
) -> BatchRunResult:
    """RUWT record-at-a-time writes: one ecall per record, coalesced."""
    app = Partitioner(PartitionOptions(name="batch_paldb")).partition(
        list(PALDB_RUWT_CLASSES)
    )
    platform = app.platform
    keys, values = KvWorkload(
        n_keys=n_records, value_length=value_length, seed=seed
    ).generate()
    with app.start() as session:
        workdir = tempfile.mkdtemp(prefix="batch_paldb_")
        path = os.path.join(workdir, "store.paldb")
        writer = TrustedDBWriter(path)
        writer.begin_store()
        coalescer = (
            attach_batching(session, _policy(batch_size))
            if batch_size is not None
            else None
        )
        started_s = platform.now_s
        crossings_before = session.transition_stats.crossings
        for key, value in zip(keys, values):
            writer.put_record(key, value)
        written = writer.finish_store()  # barrier: drains any open batch
        found, checksum = UntrustedDBReader(path).read_all(keys)
        elapsed_s = platform.now_s - started_s
        stats = session.transition_stats
        batch_stats = coalescer.stats.to_dict() if coalescer is not None else None
        if coalescer is not None:
            coalescer.detach()
        return BatchRunResult(
            workload="paldb",
            batch_size=batch_size,
            ops=n_records,
            elapsed_s=elapsed_s,
            crossings=stats.crossings - crossings_before,
            batch_crossings=stats.batch_crossings,
            batched_calls=stats.batched_calls,
            checksum=(written, found, checksum),
            batch_stats=batch_stats,
            ledger={k: tuple(v) for k, v in platform.snapshot().items()},
        )


def run_keeper_batching(
    batch_size: Optional[int],
    n_entries: int = 12,
    audit_passes: int = 6,
) -> BatchRunResult:
    """SecureKeeper's in-enclave audit trail, one ecall per access."""
    app = Partitioner(PartitionOptions(name="batch_keeper")).partition(
        list(SECUREKEEPER_CLASSES)
    )
    platform = app.platform
    with app.start() as session:
        vault = PayloadVault("master")
        client = SecureKeeperClient(vault, ZNodeStore())
        for index in range(n_entries):
            client.put(f"/cfg{index}", f"value-{index}")
        coalescer = (
            attach_batching(session, _policy(batch_size))
            if batch_size is not None
            else None
        )
        started_s = platform.now_s
        crossings_before = session.transition_stats.crossings
        for _ in range(audit_passes):
            for index in range(n_entries):
                vault.record_access(f"/cfg{index}")
        audited = vault.audit_count()  # data-dependent: drains the queue
        correct = sum(
            1
            for index in range(n_entries)
            if client.read(f"/cfg{index}") == f"value-{index}"
        )
        elapsed_s = platform.now_s - started_s
        stats = session.transition_stats
        batch_stats = coalescer.stats.to_dict() if coalescer is not None else None
        if coalescer is not None:
            coalescer.detach()
        return BatchRunResult(
            workload="securekeeper",
            batch_size=batch_size,
            ops=audit_passes * n_entries,
            elapsed_s=elapsed_s,
            crossings=stats.crossings - crossings_before,
            batch_crossings=stats.batch_crossings,
            batched_calls=stats.batched_calls,
            checksum=(audited, correct),
            batch_stats=batch_stats,
            ledger={k: tuple(v) for k, v in platform.snapshot().items()},
        )


_RUNNERS = {
    "bank": run_bank_batching,
    "paldb": run_paldb_batching,
    "securekeeper": run_keeper_batching,
}


def run_workload(workload: str, batch_size: Optional[int]) -> BatchRunResult:
    try:
        runner = _RUNNERS[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; pick from {sorted(_RUNNERS)}"
        ) from None
    return runner(batch_size)


# -- durability under faults --------------------------------------------------


def run_bank_durability(
    batch_size: Optional[int],
    n_updates: int = 24,
    crash_at: int = 2,
    seed: int = DEFAULT_SEED,
) -> DurabilityResult:
    """One seeded mid-call enclave crash against a batched update stream.

    ``update_balance`` is *not* idempotent, so a crossing lost mid-call
    is refused replay. Unbatched, the caller of the doomed update sees
    the error and nothing is silently lost. Batched, the whole envelope
    shares the loss: every already-acknowledged member of the doomed
    batch vanishes — the batch-size vs lost-updates trade the report's
    durability table plots.
    """
    app = Partitioner(PartitionOptions(name="batch_durability")).partition(
        list(BANK_CLASSES)
    )
    platform = app.platform
    injector = FaultInjector(
        seed=seed,
        rules=[
            FaultRule(
                FaultKind.ENCLAVE_CRASH,
                routine="*Account_update_balance",
                at_call=crash_at,
                phase="mid",
                max_fires=1,
            )
        ],
    )
    with app.start() as session:
        coordinator = attach_recovery(
            session,
            checkpoint_interval_ns=0.0,
            policy=RetryPolicy(
                max_attempts=4,
                idempotent_patterns=("relay_*_get_*", "gc_release"),
            ),
            platform_secret=b"batch-secret",
        )
        account = Account("victim", 0)
        coordinator.checkpoints.checkpoint()
        coalescer = (
            attach_batching(session, _policy(batch_size))
            if batch_size is not None
            else None
        )
        platform.enable_fault_injection(injector)
        acked = 0
        visible_failures = 0
        for _ in range(n_updates):
            try:
                account.update_balance(1)
                acked += 1
            except (NonIdempotentReplayError, RetryExhaustedError):
                visible_failures += 1
        if coalescer is not None:
            try:
                coalescer.detach()
            except (NonIdempotentReplayError, RetryExhaustedError):
                visible_failures += 1
        observed = account.get_balance()
        platform.disable_fault_injection()
        calls_refused = int(coordinator.stats.calls_refused)
        session.runtime.recovery = None
        return DurabilityResult(
            batch_size=batch_size,
            updates=n_updates,
            acked=acked,
            observed=observed,
            visible_failures=visible_failures,
            calls_refused=calls_refused,
            enclave_losses=session.enclave.rebuilds,
        )


# -- the sweep ----------------------------------------------------------------


def _ledger_identical(a: BatchRunResult, b: BatchRunResult) -> bool:
    return a.ledger == b.ledger and a.checksum == b.checksum


def run_batching(
    batch_sizes: Sequence[Optional[int]] = DEFAULT_BATCH_SIZES,
    durability_sizes: Sequence[Optional[int]] = DEFAULT_DURABILITY_SIZES,
    workloads: Sequence[str] = WORKLOADS,
    seed: int = DEFAULT_SEED,
    include_durability: bool = True,
) -> BatchingReport:
    """Sweep batch size × workload; returns the full report."""
    speedup = ExperimentTable(
        title="Batching ablation — virtual-time speedup vs batch size",
        x_label="batch size",
        y_label="speedup over unbatched",
        notes="one transition + isolate attach per batch instead of per call",
    )
    crossings = ExperimentTable(
        title="Boundary crossings vs batch size",
        x_label="batch size",
        y_label="transitions performed",
        notes="a full batch of N elides N-1 crossings",
    )
    durability = ExperimentTable(
        title="Durability — acknowledged updates lost to one mid-call crash",
        x_label="batch size",
        y_label="updates silently lost",
        notes="a non-idempotent batch is refused replay as a unit",
    )
    report = BatchingReport(
        speedup=speedup, crossings=crossings, durability=durability, seed=seed
    )
    for workload in workloads:
        speedup_series = speedup.new_series(workload)
        crossing_series = crossings.new_series(workload)
        baseline: Optional[BatchRunResult] = None
        size_one: Optional[BatchRunResult] = None
        for batch_size in batch_sizes:
            result = run_workload(workload, batch_size)
            report.results.append(result)
            if batch_size is None:
                baseline = result
                continue
            if batch_size == 1:
                size_one = result
            if baseline is not None and result.elapsed_s:
                speedup_series.add(
                    batch_size, baseline.elapsed_s / result.elapsed_s
                )
            crossing_series.add(batch_size, result.crossings)
        if baseline is not None and size_one is not None:
            report.identical[workload] = _ledger_identical(baseline, size_one)
    if include_durability:
        lost_series = durability.new_series("bank (one mid-call crash)")
        for batch_size in durability_sizes:
            result = run_bank_durability(batch_size, seed=seed)
            report.durability_results.append(result)
            lost_series.add(
                0 if batch_size is None else batch_size, result.lost_acked
            )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_batching().format())


if __name__ == "__main__":  # pragma: no cover
    main()
