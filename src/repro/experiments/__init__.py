"""Experiment harness: one module per figure/table of the paper.

Every module exposes a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentTable` whose rows/series
mirror what the paper plots, plus sensible scaled-down defaults so the
whole suite regenerates in seconds. The benchmark harness under
``benchmarks/`` runs them at paper scale and prints the tables.
"""

from repro.experiments.common import ExperimentTable, Series

__all__ = ["ExperimentTable", "Series"]
