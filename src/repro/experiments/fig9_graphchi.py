"""Fig. 9 / Fig. 11 — GraphChi PageRank across configurations (§6.5, §6.6).

PageRank over RMAT graphs, sweeping the shard count, with the total
split into sharding and engine time:

- Fig. 9: NoSGX / NoPart / Part for three graph sizes;
- Fig. 11: adds NoSGX+JVM and SCONE+JVM for the largest graph.

Expected shape: partitioning moves the sharder's time back to native
cost (~1.2x overall gain); the partitioned image beats SCONE+JVM ~2.2x.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.apps.graphchi import FastSharder, GraphChiEngine
from repro.apps.graphchi.engine import EngineLogic
from repro.apps.graphchi.sharder import SharderLogic
from repro.apps.rmat import generate_rmat
from repro.baselines import host_jvm_session, native_session, scone_jvm_session
from repro.core import Partitioner, PartitionOptions
from repro.experiments.common import ExperimentTable

#: The paper's three graph sizes (V, E).
DEFAULT_GRAPHS = ((6_250, 25_000), (12_500, 50_000), (25_000, 100_000))
DEFAULT_SHARDS = (1, 2, 3, 4, 5, 6)
DEFAULT_ITERATIONS = 5

GRAPHCHI_CLASSES = (GraphChiEngine, FastSharder)


@dataclass(frozen=True)
class GraphchiRun:
    sharding_s: float
    engine_s: float
    total_s: float


def _run_one(
    session_factory: Callable,
    sources: List[int],
    destinations: List[int],
    n_vertices: int,
    n_shards: int,
    iterations: int,
) -> GraphchiRun:
    with session_factory() as session:
        workdir = tempfile.mkdtemp(prefix="graphchi_")
        platform = session.platform
        shard_start = platform.now_s
        sharded = FastSharder(workdir).shard(
            sources, destinations, n_vertices, n_shards
        )
        shard_end = platform.now_s
        ranks = GraphChiEngine().run_pagerank(sharded, iterations=iterations)
        total = platform.now_s
        if len(ranks) != n_vertices:
            raise AssertionError("engine returned a truncated rank vector")
        return GraphchiRun(
            sharding_s=shard_end - shard_start,
            engine_s=total - shard_end,
            total_s=total,
        )


def _configurations(extended: bool) -> Dict[str, Callable]:
    configs: Dict[str, Callable] = {
        "NoSGX-NI": lambda: native_session(name="graphchi"),
        "NoPart-NI": lambda: Partitioner(PartitionOptions(name="graphchi_nopart"))
        .unpartitioned([SharderLogic, EngineLogic])
        .start(),
        "Part-NI": lambda: Partitioner(PartitionOptions(name="graphchi_part"))
        .partition(list(GRAPHCHI_CLASSES))
        .start(),
    }
    if extended:
        configs["NoSGX+JVM"] = lambda: host_jvm_session(name="graphchi_jvm")
        configs["SCONE+JVM"] = lambda: scone_jvm_session(name="graphchi_scone")
    return configs


def run_fig9(
    graphs: Sequence[Tuple[int, int]] = DEFAULT_GRAPHS,
    shard_counts: Sequence[int] = DEFAULT_SHARDS,
    iterations: int = DEFAULT_ITERATIONS,
) -> Dict[Tuple[int, int], ExperimentTable]:
    """One table per graph size; series are ``<config>`` totals plus
    ``<config>:sharding`` / ``<config>:engine`` breakdowns."""
    results: Dict[Tuple[int, int], ExperimentTable] = {}
    for n_vertices, n_edges in graphs:
        sources, destinations = generate_rmat(n_vertices, n_edges, seed=11)
        src_list, dst_list = sources.tolist(), destinations.tolist()
        table = ExperimentTable(
            title=(
                f"Fig. 9 — PageRank-GraphChi, {n_vertices / 1000:g}k-V, "
                f"{n_edges / 1000:g}k-E"
            ),
            x_label="shards",
            y_label="run time (s)",
        )
        for name, factory in _configurations(extended=False).items():
            total = table.new_series(name)
            sharding = table.new_series(f"{name}:sharding")
            engine = table.new_series(f"{name}:engine")
            for n_shards in shard_counts:
                run = _run_one(
                    factory, src_list, dst_list, n_vertices, n_shards, iterations
                )
                total.add(n_shards, run.total_s)
                sharding.add(n_shards, run.sharding_s)
                engine.add(n_shards, run.engine_s)
        results[(n_vertices, n_edges)] = table
    return results


def run_fig11(
    n_vertices: int = 25_000,
    n_edges: int = 100_000,
    shard_counts: Sequence[int] = DEFAULT_SHARDS,
    iterations: int = DEFAULT_ITERATIONS,
) -> ExperimentTable:
    """Fig. 11 — the 25k-V/100k-E graph across all five configurations."""
    sources, destinations = generate_rmat(n_vertices, n_edges, seed=11)
    src_list, dst_list = sources.tolist(), destinations.tolist()
    table = ExperimentTable(
        title=(
            f"Fig. 11 — PageRank-GraphChi vs SCONE+JVM, "
            f"{n_vertices / 1000:g}k vertices, {n_edges / 1000:g}k edges"
        ),
        x_label="shards",
        y_label="run time (s)",
    )
    for name, factory in _configurations(extended=True).items():
        series = table.new_series(name)
        for n_shards in shard_counts:
            run = _run_one(
                factory, src_list, dst_list, n_vertices, n_shards, iterations
            )
            series.add(n_shards, run.total_s)
    return table


def main() -> None:  # pragma: no cover - manual entry point
    for table in run_fig9().values():
        print(table.format(y_format="{:.3f}"))
        print()
    print(run_fig11().format(y_format="{:.3f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
