"""Extra experiment — startup time and footprint: native image vs JVM.

§2.2: AOT compilation yields "quicker startup times and lower memory
footprint", and build-time initialisation moves work from every start
into the single build ("initialize once, start fast"). This experiment
measures:

- session startup latency of the partitioned native image, the
  unpartitioned in-enclave image, a host JVM and SCONE+JVM;
- the resident footprint each brings along before application work;
- the build-time-init effect: an application whose configuration
  parsing runs at build time starts from the parsed state.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.bank import BANK_CLASSES
from repro.baselines import host_jvm_session, scone_jvm_session
from repro.baselines.jvm import JvmBootModel
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.annotations import trusted
from repro.core.tcb import GRAAL_RUNTIME_BYTES
from repro.experiments.common import ExperimentTable


def run_startup() -> ExperimentTable:
    table = ExperimentTable(
        title="Startup — native images vs JVMs (§2.2)",
        x_label="metric",
        y_label="value",
        notes="x=0: startup seconds; x=1: runtime footprint (MB)",
    )
    partitioner = Partitioner(PartitionOptions(name="startup"))

    part_app = partitioner.partition(BANK_CLASSES, main="Main.main")
    series = table.new_series("Part-NI")
    with part_app.start() as session:
        series.add(0, session.platform.now_s)
    footprint = (
        part_app.images.trusted.code_size_bytes
        + part_app.images.untrusted.code_size_bytes
        + part_app.images.trusted.image_heap_bytes
        + 2 * GRAAL_RUNTIME_BYTES
    )
    series.add(1, footprint / 1e6)

    unpart_app = partitioner.unpartitioned(list(BANK_CLASSES), main="Main.main")
    series = table.new_series("NoPart-NI")
    with unpart_app.start() as session:
        series.add(0, session.platform.now_s)
    series.add(
        1,
        (unpart_app.image.code_size_bytes + unpart_app.image.image_heap_bytes
         + GRAAL_RUNTIME_BYTES) / 1e6,
    )

    boot = JvmBootModel(app_classes=len(BANK_CLASSES))
    series = table.new_series("NoSGX+JVM")
    with host_jvm_session(boot=boot) as session:
        series.add(0, session.platform.now_s)
    series.add(1, boot.runtime_footprint_bytes / 1e6)

    series = table.new_series("SCONE+JVM")
    with scone_jvm_session() as session:
        series.add(0, session.platform.now_s)
    series.add(1, boot.runtime_footprint_bytes / 1e6)

    return table


@trusted
class ConfiguredService:
    """Service whose configuration parsing can run at build time."""

    #: Simulated cost of parsing the configuration at runtime.
    PARSE_CYCLES = 80e6

    @classmethod
    def __build_init__(cls, image_heap) -> None:
        image_heap.put("service_config", cls.parse_configuration())

    @staticmethod
    def parse_configuration() -> Dict[str, int]:
        # Deterministic "parse" of a config file.
        return {f"option_{i}": i * 3 for i in range(200)}

    def __init__(self) -> None:
        self.ready = True


def run_build_time_init() -> ExperimentTable:
    """Startup with and without build-time initialisation."""
    table = ExperimentTable(
        title="Build-time initialisation — start from the image heap (§2.2)",
        x_label="variant",
        y_label="startup (s)",
        notes="x=0: init at build; x=1: init at every start",
    )
    series = table.new_series("startup seconds")

    app = Partitioner(PartitionOptions(name="bti")).partition(
        [ConfiguredService, *BANK_CLASSES], main="Main.main"
    )
    with app.start() as session:
        config = session.startup_heap(Side.TRUSTED)["service_config"]
        assert config["option_7"] == 21  # parsed state, no runtime work
        series.add(0, session.platform.now_s)

    with app.start() as session:
        # Counterfactual: parse at startup instead.
        session.platform.charge_cycles(
            "startup.runtime_init", ConfiguredService.PARSE_CYCLES
        )
        ConfiguredService.parse_configuration()
        series.add(1, session.platform.now_s)
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_startup().format(y_format="{:.4f}"))
    print()
    print(run_build_time_init().format(y_format="{:.4f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
