"""Ablation studies over Montsalvat's design choices.

Not figures from the paper, but quantifications of the knobs the paper
discusses:

- **switchless RMI** (§7 future work): replace hardware transitions
  with worker-queue calls on a transition-heavy workload (PalDB RUWT);
- **hash strategy** (§5.2): identity hashes vs MD5 — cost per proxy
  and collision probability, the paper's stated reason to move to MD5;
- **MEE multiplier sensitivity**: how the Fig. 6 CPU result depends on
  the memory-encryption penalty;
- **GC helper period** (§5.5): scan overhead vs mirror retention.
"""

from __future__ import annotations

import gc as _python_gc
import tempfile
from dataclasses import replace
from typing import Sequence

from repro.core import Partitioner, PartitionOptions, Side
from repro.core.hashing import IdentityHashStrategy, Md5HashStrategy
from repro.costs import DEFAULT_COST_MODEL, Platform
from repro.experiments.common import ExperimentTable
from repro.experiments.fig6_synthetic import _run_generated
from repro.experiments.micro import MICRO_CLASSES, TrustedCell


def run_switchless_ablation(
    invocation_counts: Sequence[int] = (1_000, 5_000, 10_000),
) -> ExperimentTable:
    """Fine-grained RMIs with and without switchless worker calls.

    §7 proposes transition-less cross-enclave calls "especially useful
    for applications performing several enclave transitions" — exactly
    the chatty setter workload of Fig. 4a.
    """
    table = ExperimentTable(
        title="Ablation — switchless calls on fine-grained RMIs",
        x_label="invocations",
        y_label="run time (s)",
    )
    for switchless in (False, True):
        name = "switchless" if switchless else "hardware transitions"
        series = table.new_series(name)
        for count in invocation_counts:
            options = PartitionOptions(
                name=f"ablate_sw_{switchless}", switchless=switchless
            )
            app = Partitioner(options).partition(list(MICRO_CLASSES))
            with app.start() as session:
                cell = TrustedCell(0)
                span = session.platform.measure()
                for i in range(count):
                    cell.set_value(i)
                series.add(count, span.elapsed_s())
    return table


def run_hash_ablation(n_objects: int = 5_000) -> ExperimentTable:
    """Identity vs MD5 hashing: per-proxy creation cost and collisions."""
    table = ExperimentTable(
        title="Ablation — proxy hash strategy",
        x_label="objects",
        y_label="creation time (s)",
    )
    strategies = {
        "identity-hash": IdentityHashStrategy,
        "md5-hash": Md5HashStrategy,
    }
    for name, factory in strategies.items():
        series = table.new_series(name)
        options = PartitionOptions(name=f"ablate_hash_{name}", hash_strategy_factory=factory)
        app = Partitioner(options).partition(list(MICRO_CLASSES))
        with app.start() as session:
            span = session.platform.measure()
            cells = [TrustedCell(i) for i in range(n_objects)]
            series.add(n_objects, span.elapsed_s())
            del cells
    # Collision probabilities in a 2^31 identity space vs 64-bit MD5.
    identity = IdentityHashStrategy()
    seen = set()
    collisions = 0
    for _ in range(n_objects):
        value = identity.next_hash("Cell")
        if value in seen:
            collisions += 1
        seen.add(value)
    table.notes = (
        f"identity collisions at n={n_objects}: {collisions}; "
        "md5 collisions: 0 (2^64 space)"
    )
    return table


def run_mee_sensitivity(
    multipliers: Sequence[float] = (2.0, 4.0, 8.5, 12.0),
    n_classes: int = 20,
) -> ExperimentTable:
    """Fig. 6 CPU endpoint spread as a function of the MEE penalty."""
    table = ExperimentTable(
        title="Ablation — MEE multiplier sensitivity (Fig. 6 CPU workload)",
        x_label="mee multiplier",
        y_label="all-trusted / all-untrusted runtime ratio",
    )
    series = table.new_series("enclave slowdown")
    for multiplier in multipliers:
        model = replace(
            DEFAULT_COST_MODEL,
            memory=replace(DEFAULT_COST_MODEL.memory, mee_multiplier=multiplier),
        )
        platform_in = Platform(cost_model=model)
        platform_out = Platform(cost_model=model)
        all_trusted = _run_generated_on(platform_in, 0, n_classes)
        all_untrusted = _run_generated_on(platform_out, 100, n_classes)
        series.add(multiplier, all_trusted / all_untrusted)
    return table


def _run_generated_on(platform: Platform, pct_untrusted: int, n_classes: int) -> float:
    from repro.apps.generator import generate_app
    from repro.baselines import native_session

    import repro.experiments.fig6_synthetic as fig6

    fig6._run_counter[0] += 1
    tag = f"mee{fig6._run_counter[0]}"
    spec = generate_app(
        n_classes=n_classes, pct_untrusted=pct_untrusted, workload="cpu", tag=tag
    )
    workdir = tempfile.mkdtemp(prefix="ablate_mee_")
    if pct_untrusted >= 100:
        with native_session(platform=platform) as session:
            spec.drive(workdir)
            return session.platform.now_s
    app = Partitioner(PartitionOptions(name=f"ablate_{tag}")).partition(
        list(spec.classes), platform=platform
    )
    with app.start() as session:
        spec.drive(workdir)
        return session.platform.now_s


def run_gc_period_ablation(
    periods_s: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    batches: int = 12,
    batch_size: int = 300,
) -> ExperimentTable:
    """GC-helper period: shorter periods release mirrors sooner (lower
    peak enclave retention) at the price of more scans."""
    table = ExperimentTable(
        title="Ablation — GC helper scan period (§5.5)",
        x_label="period (s)",
        y_label="value",
    )
    retention = table.new_series("peak stale mirrors")
    scans = table.new_series("helper scans")
    for period in periods_s:
        options = PartitionOptions(name=f"ablate_gc_{period}", gc_helper_period_s=period)
        app = Partitioner(options).partition(list(MICRO_CLASSES))
        with app.start() as session:
            helper = session.gc_helpers[Side.UNTRUSTED]
            registry = session.runtime.state_of(Side.TRUSTED).registry
            peak_stale = 0
            for _ in range(batches):
                cells = [TrustedCell(i) for i in range(batch_size)]
                del cells
                _python_gc.collect()
                # Live proxies are zero now; whatever the registry still
                # holds is stale retention.
                peak_stale = max(peak_stale, registry.live_count())
                session.platform.charge_ns("ablate.idle", 0.3e9)
                helper.maybe_scan()
            retention.add(period, peak_stale)
            scans.add(period, helper.stats.scans)
    return table


def run_annotation_granularity_ablation(
    state_bytes_sweep: Sequence[int] = (64, 512, 4_096, 32_768),
    calls: int = 1_000,
) -> ExperimentTable:
    """Class-level vs method-level annotation (§5.1 vs Uranus [26]).

    With class-level annotations the object's state *lives* in the
    enclave: each call ships only its arguments. Method-level
    annotation (Uranus-style) executes annotated methods in the enclave
    but leaves the object outside, so every call ships the receiver's
    state in and the updated state back out. The gap grows with state
    size — one half of the paper's argument for class boundaries (the
    other half being that method annotations need data-flow analysis).
    """
    from repro.core.serialization import SerializationCodec
    from repro.costs import fresh_platform
    from repro.runtime.context import Location
    from repro.sgx.sdk import SgxSdk
    from repro.sgx.transitions import TransitionLayer

    table = ExperimentTable(
        title="Ablation — class-level vs method-level annotation (§5.1)",
        x_label="object state (bytes)",
        y_label="run time (s)",
        notes=f"{calls} trusted-method calls per point",
    )
    class_level = table.new_series("class-level (Montsalvat)")
    method_level = table.new_series("method-level (Uranus-style)")
    for state_bytes in state_bytes_sweep:
        state_payload = b"\xa5" * state_bytes

        # Class-level: state in the enclave; args-only crossings.
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        layer = TransitionLayer(platform, sdk.create_enclave(sdk.sign("cl", b"cl")))
        for _ in range(calls):
            layer.ecall("relay_update", lambda: None, payload_bytes=8)
        class_level.add(state_bytes, platform.now_s)

        # Method-level: receiver state serialized in and back out.
        platform = fresh_platform()
        sdk = SgxSdk(platform)
        layer = TransitionLayer(platform, sdk.create_enclave(sdk.sign("ml", b"ml")))
        codec = SerializationCodec(platform)
        for _ in range(calls):
            blob = codec.serialize(state_payload, Location.HOST)
            layer.ecall("annotated_method", lambda: None, payload_bytes=len(blob) + 8)
            codec.deserialize(blob, Location.ENCLAVE)  # state into the method
            updated = codec.serialize(state_payload, Location.ENCLAVE)
            codec.deserialize(updated, Location.HOST)  # state shipped back
        method_level.add(state_bytes, platform.now_s)
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_switchless_ablation().format(y_format="{:.3f}"))
    print()
    print(run_hash_ablation().format(y_format="{:.4f}"))
    print()
    print(run_mee_sensitivity().format(y_format="{:.2f}"))
    print()
    print(run_gc_period_ablation().format(y_format="{:.0f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
