"""Shared experiment infrastructure: result tables and config helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass
class Series:
    """One curve/bar group: (x, y) points under a name."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    def y_at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise ConfigurationError(f"series {self.name!r} has no point at x={x}")

    def mean(self) -> float:
        ys = self.ys()
        return sum(ys) / len(ys) if ys else 0.0


@dataclass
class ExperimentTable:
    """A figure/table reproduced: named series over a shared x-axis."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: str = ""

    def new_series(self, name: str) -> Series:
        series = Series(name)
        self.series.append(series)
        return series

    def get(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise ConfigurationError(
            f"no series {name!r} in {self.title!r}; "
            f"have {[s.name for s in self.series]}"
        )

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        """Mean of pointwise y-ratios between two series (paper-style
        "A is on average N x faster than B")."""
        top, bottom = self.get(numerator), self.get(denominator)
        pairs = [
            (ty, by)
            for (tx, ty), (bx, by) in zip(top.points, bottom.points)
            if tx == bx and by
        ]
        if not pairs:
            raise ConfigurationError("series do not share x points")
        return sum(t / b for t, b in pairs) / len(pairs)

    def format(self, y_format: str = "{:.6f}") -> str:
        """Aligned text table: x down the rows, one column per series."""
        names = [s.name for s in self.series]
        xs: List[float] = []
        for series in self.series:
            for x in series.xs():
                if x not in xs:
                    xs.append(x)
        header = f"{self.x_label:<16}" + "".join(f"{n:>18}" for n in names)
        lines = [self.title, "=" * len(self.title), header]
        for x in xs:
            cells = []
            for series in self.series:
                try:
                    cells.append(y_format.format(series.y_at(x)))
                except ConfigurationError:
                    cells.append("-")
            x_text = f"{x:g}"
            lines.append(f"{x_text:<16}" + "".join(f"{c:>18}" for c in cells))
        if self.notes:
            lines.append(f"-- {self.notes}")
        return "\n".join(lines)


def orders_of_magnitude(value: float) -> float:
    """log10 helper used by the Fig. 3/4 shape assertions."""
    import math

    if value <= 0:
        raise ConfigurationError("orders_of_magnitude needs a positive value")
    return math.log10(value)
