"""Accelerator-offload ablation: DMA out of the enclave vs in-enclave.

SPECjvm-style kernels pay three enclave taxes when they run inside:
the MEE on every cache miss, EPC paging once the working set overflows,
and the native image's serial GC on every allocated byte. A
PCIe-attached accelerator pays none of them — but it charges a toll at
the door: the working set must be staged into pinned untrusted pages,
MAC-protected, DMA-shipped, and the results shipped back and verified
(:class:`~repro.sgx.dma.DmaChannel` prices that data path under
``sgx.dma.*``).

Whether the toll is worth paying depends on how well the kernel maps
onto the device, captured per kernel as an *acceleration ratio*: device
execution time relative to the kernel's unshielded native cost (compute
plus allocation management). Dense data-parallel FFT flies (0.22);
irregular-access SparseMatMult still wins (0.6); the allocation-heavy,
serially RNG-driven Monte_Carlo port maps terribly (2.4) — so the
ablation's expected shape is a **winner flip**: fft and sparse leave
the enclave, monte_carlo stays.

The artifact also records an arena-noop identity check: attaching a
:class:`~repro.core.arena.SharedBufferArena` to a run that never stages
a value (the bank app's batchable arguments are all primitives) must
leave the ledger byte-identical — the fast path prices nothing until
something is actually staged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.bank import Account, BANK_CLASSES
from repro.apps.specjvm import KERNELS
from repro.apps.specjvm.kernels import _BUMP_ALLOC_BYTE_CYCLES, Kernel
from repro.batching import BatchPolicy, attach_batching
from repro.core import Partitioner, PartitionOptions
from repro.core.annotations import ambient_context
from repro.core.arena import attach_arena
from repro.experiments.common import ExperimentTable
from repro.obs.artifacts import run_artifact, write_artifact
from repro.sgx.dma import DmaChannel

#: The three kernels of the ablation, in report order.
OFFLOAD_KERNELS: Tuple[str, ...] = ("fft", "sparse", "monte_carlo")

#: Device execution time relative to unshielded native execution.
#: Below 1.0 the device computes faster than the CPU; above it the
#: kernel shape defeats the accelerator (Monte_Carlo's serial RNG
#: dependency chain and allocation churn do not vectorise).
ACCEL_RATIOS: Dict[str, float] = {
    "fft": 0.22,
    "sparse": 0.6,
    "monte_carlo": 2.4,
}

#: Result bytes shipped back, as a fraction of the working set (the
#: kernels reduce: a spectrum, a vector, an estimate — not the input).
RESULT_FRACTION = 0.125


def native_equivalent_cycles(kernel: Kernel, gc_rate: float) -> float:
    """What the kernel costs unshielded: compute + allocation management.

    This is the baseline the acceleration ratio scales — the device has
    no MEE and no EPC, but it still executes the arithmetic and still
    manages the kernel's allocation churn (in device memory).
    """
    fp = kernel.footprint
    return fp.cpu_cycles + fp.alloc_bytes * (_BUMP_ALLOC_BYTE_CYCLES + gc_rate)


@dataclass
class KernelVerdict:
    """One kernel's in-enclave vs offloaded comparison."""

    kernel: str
    accel_ratio: float
    in_enclave_s: float
    offload_s: float
    dma_bytes: int
    checksums_match: bool

    @property
    def winner(self) -> str:
        return "offload" if self.offload_s < self.in_enclave_s else "in-enclave"

    @property
    def speedup(self) -> float:
        """In-enclave time over offload time (>1 means offload wins)."""
        return self.in_enclave_s / self.offload_s if self.offload_s else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "accel_ratio": self.accel_ratio,
            "in_enclave_s": self.in_enclave_s,
            "offload_s": self.offload_s,
            "dma_bytes": self.dma_bytes,
            "winner": self.winner,
            "speedup": round(self.speedup, 4),
            "checksums_match": self.checksums_match,
        }


@dataclass
class OffloadReport:
    """Full offload ablation output."""

    table: ExperimentTable
    verdicts: List[KernelVerdict] = field(default_factory=list)
    arena_noop_identical: bool = False

    @property
    def winners(self) -> Dict[str, str]:
        return {v.kernel: v.winner for v in self.verdicts}

    def format(self) -> str:
        parts = [self.table.format(y_format="{:.3f}"), ""]
        for verdict in self.verdicts:
            parts.append(
                f"{verdict.kernel:<12} {verdict.winner:<11} "
                f"({verdict.speedup:.2f}x offload speedup, ratio "
                f"{verdict.accel_ratio:.2f}, "
                f"{verdict.dma_bytes / 1e6:.1f} MB over DMA)"
            )
        noop = "identical" if self.arena_noop_identical else "DIVERGED"
        parts.append(f"arena attached-but-unused vs no arena: ledger {noop}")
        return "\n".join(parts)

    def fingerprint(self) -> str:
        """Digest of every verdict and the identity check. The run is a
        pure function of the cost model, so two invocations must agree
        (the CI ``offload-smoke`` job asserts it)."""
        payload = {
            "verdicts": [v.to_dict() for v in self.verdicts],
            "arena_noop_identical": self.arena_noop_identical,
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_artifact(self) -> Dict[str, object]:
        return run_artifact(
            "offload",
            tables=[self.table],
            extra={
                "offload": {
                    "fingerprint": self.fingerprint(),
                    "verdicts": [v.to_dict() for v in self.verdicts],
                    "winners": self.winners,
                    "arena_noop_identical": self.arena_noop_identical,
                }
            },
        )

    def write_artifact(self, path: str) -> None:
        write_artifact(path, self.to_artifact())


# -- kernel legs ----------------------------------------------------------------


class _KernelHost:
    """Placeholder application class for the unpartitioned image."""

    def run(self) -> None:
        """Entry point the image is built around."""


def _enclave_session(name: str):
    return (
        Partitioner(PartitionOptions(name=name))
        .unpartitioned([_KernelHost])
        .start()
    )


def run_in_enclave(kernel_name: str) -> Tuple[float, float]:
    """The kernel inside an unpartitioned enclave image (SGX-NI)."""
    with _enclave_session(f"offload_{kernel_name}_enclave") as session:
        span = session.platform.measure()
        checksum = KERNELS[kernel_name].run(ambient_context())
        return span.elapsed_s(), checksum


def run_offloaded(kernel_name: str) -> Tuple[float, float, int]:
    """The kernel shipped to the accelerator over the DMA channel."""
    kernel = KERNELS[kernel_name]
    fp = kernel.footprint
    with _enclave_session(f"offload_{kernel_name}_device") as session:
        platform = session.platform
        channel = DmaChannel(platform, name=f"dma_{kernel_name}")
        span = platform.measure()
        out_bytes = int(fp.ws_bytes)
        back_bytes = int(fp.ws_bytes * RESULT_FRACTION)
        channel.ship_to_device(out_bytes)
        channel.launch(kernel_name)
        platform.charge_cycles(
            f"accel.compute.{kernel_name}",
            native_equivalent_cycles(
                kernel, platform.cost_model.gc.ni_alloc_gc_byte_cycles
            )
            * ACCEL_RATIOS[kernel_name],
        )
        channel.fetch_from_device(back_bytes)
        checksum = kernel.compute()  # same numbers, computed on-device
        return span.elapsed_s(), checksum, channel.stats.bytes_moved


# -- the arena-noop identity check ----------------------------------------------


def _bank_ledger(with_arena: bool) -> Dict[str, Tuple[int, float]]:
    """One batched bank run's full ledger, arena attached or not.

    The bank's batchable arguments are all primitives, so the arena
    stages nothing — its presence must not move a single entry.
    """
    app = Partitioner(PartitionOptions(name="offload_noop")).partition(
        list(BANK_CLASSES)
    )
    with app.start() as session:
        attach_batching(session, BatchPolicy(max_batch=8, window_ns=1e12))
        if with_arena:
            attach_arena(session)
        account = Account("noop", 100)
        for index in range(24):
            account.update_balance(1 + index % 3)
        account.get_balance()
    return {k: tuple(v) for k, v in app.platform.snapshot().items()}


def check_arena_noop_identity() -> bool:
    """Arena attached but never staging == no arena, byte for byte."""
    return _bank_ledger(with_arena=True) == _bank_ledger(with_arena=False)


# -- the ablation ----------------------------------------------------------------


def run_offload(
    kernels: Sequence[str] = OFFLOAD_KERNELS,
) -> OffloadReport:
    table = ExperimentTable(
        title="Accelerator offload — DMA out of the enclave vs in-enclave",
        x_label="kernel",
        y_label="run time (s)",
        notes="x positions are kernel indexes in "
        + ", ".join(kernels)
        + " order",
    )
    enclave_series = table.new_series("in-enclave")
    offload_series = table.new_series("offload")
    report = OffloadReport(table=table)
    for index, kernel_name in enumerate(kernels):
        in_enclave_s, enclave_checksum = run_in_enclave(kernel_name)
        offload_s, device_checksum, dma_bytes = run_offloaded(kernel_name)
        enclave_series.add(index, in_enclave_s)
        offload_series.add(index, offload_s)
        report.verdicts.append(
            KernelVerdict(
                kernel=kernel_name,
                accel_ratio=ACCEL_RATIOS[kernel_name],
                in_enclave_s=in_enclave_s,
                offload_s=offload_s,
                dma_bytes=dma_bytes,
                checksums_match=enclave_checksum == device_checksum,
            )
        )
    report.arena_noop_identical = check_arena_noop_identity()
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro offload [--quick] [--out PATH]``."""
    import argparse
    import os
    import sys

    parser = argparse.ArgumentParser(
        prog="repro offload",
        description="accelerator DMA offload vs in-enclave execution",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run (same kernels; kept for smoke-job symmetry)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=os.path.join("results", "offload.json"),
        help="artifact path (default: results/offload.json)",
    )
    args = parser.parse_args(argv)
    report = run_offload()
    print(report.format())
    print(f"fingerprint: {report.fingerprint()}")
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    report.write_artifact(args.out)
    print(f"artifact: {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
