"""Fig. 4 — remote method invocation latency and serialization (§6.3).

(a) Six scenarios over increasing invocation counts: concrete and proxy
    invocations in both directions, plus the ``...+s`` variants passing
    a serializable list of 16-byte strings.
(b) Fixed invocation count, varying the serialized list size.

Expected shape: proxy RMIs sit 3-4 orders above concrete invocations;
serialization multiplies in-enclave RMIs by ~10x and out-of-enclave
RMIs by ~3x around the paper's list sizes.
"""

from __future__ import annotations

from typing import Sequence

from repro.batching import BatchPolicy, attach_batching
from repro.core import Partitioner, PartitionOptions, Side
from repro.core.arena import attach_arena
from repro.experiments.common import ExperimentTable
from repro.experiments.micro import (
    ARENA_MICRO_CLASSES,
    MICRO_CLASSES,
    TrustedCell,
    TrustedSink,
    UntrustedCell,
    make_payload,
)

DEFAULT_COUNTS = tuple(range(10_000, 100_001, 10_000))
DEFAULT_PAYLOAD = 1_000  # 16-byte strings per +s invocation (fig 4a)
DEFAULT_LIST_SIZES = tuple(range(10_000, 100_001, 10_000))
DEFAULT_4B_INVOCATIONS = 10_000
DEFAULT_ARENA_LIST_SIZES = (1_000, 4_000, 16_000)
DEFAULT_ARENA_INVOCATIONS = 256


def _fresh_session(name: str):
    options = PartitionOptions(name=name, memoize_serialization=True)
    return Partitioner(options).partition(list(MICRO_CLASSES)).start()


def run_fig4a(
    counts: Sequence[int] = DEFAULT_COUNTS,
    payload_size: int = DEFAULT_PAYLOAD,
) -> ExperimentTable:
    table = ExperimentTable(
        title="Fig. 4a — remote method invocation latency",
        x_label="invocations",
        y_label="latency (s)",
        notes=f"+s variants pass a list of {payload_size} 16-byte strings",
    )
    payload = make_payload(payload_size)
    scenarios = {
        "proxy-out->in": (TrustedCell, Side.UNTRUSTED, None),
        "proxy-in->out": (UntrustedCell, Side.TRUSTED, None),
        "concrete-out": (UntrustedCell, Side.UNTRUSTED, None),
        "concrete-in": (TrustedCell, Side.TRUSTED, None),
        "proxy-out->in+s": (TrustedCell, Side.UNTRUSTED, payload),
        "proxy-in->out+s": (UntrustedCell, Side.TRUSTED, payload),
    }
    for name, (cls, caller_side, arg) in scenarios.items():
        series = table.new_series(name)
        for count in counts:
            with _fresh_session(f"fig4a_{name}") as session:
                with session.on_side(caller_side):
                    target = cls(0)
                    span = session.platform.measure()
                    if arg is None:
                        for i in range(count):
                            target.set_value(i)
                    else:
                        for _ in range(count):
                            target.set_payload(arg)
                    series.add(count, span.elapsed_s())
    return table


def run_fig4b(
    list_sizes: Sequence[int] = DEFAULT_LIST_SIZES,
    invocations: int = DEFAULT_4B_INVOCATIONS,
) -> ExperimentTable:
    table = ExperimentTable(
        title="Fig. 4b — impact of serialization on RMIs",
        x_label="list size",
        y_label="latency (s)",
        notes=f"{invocations} invocations per point",
    )
    scenarios = {
        "proxy-out->in+s": (TrustedCell, Side.UNTRUSTED),
        "proxy-in->out+s": (UntrustedCell, Side.TRUSTED),
        "proxy-out->in": (TrustedCell, Side.UNTRUSTED),
        "proxy-in->out": (UntrustedCell, Side.TRUSTED),
    }
    for name, (cls, caller_side) in scenarios.items():
        series = table.new_series(name)
        serialized = name.endswith("+s")
        for size in list_sizes:
            payload = make_payload(size) if serialized else None
            with _fresh_session(f"fig4b_{name}") as session:
                with session.on_side(caller_side):
                    target = cls(0)
                    span = session.platform.measure()
                    for i in range(invocations):
                        if payload is None:
                            target.set_value(i)
                        else:
                            target.set_payload(payload)
                    series.add(size, span.elapsed_s())
    return table


def run_fig4b_arena(
    list_sizes: Sequence[int] = DEFAULT_ARENA_LIST_SIZES,
    invocations: int = DEFAULT_ARENA_INVOCATIONS,
    max_batch: int = 16,
) -> ExperimentTable:
    """Fig. 4b repriced for the zero-copy crossing fast path.

    The classic Fig. 4b sweep measures what serialization *adds* to an
    RMI; this one measures what the arena *removes*: the same payload
    crossings via the batchable void :class:`TrustedSink`, once with
    classic per-call serialization and once staged into the shared
    arena (ciphertext+MAC pricing). Both legs run under the same batch
    policy, so the only difference is the encode path.
    """
    table = ExperimentTable(
        title="Fig. 4b (arena) — zero-copy staging vs classic serialization",
        x_label="list size",
        y_label="latency (s)",
        notes=f"{invocations} batched void push() calls per point",
    )
    for with_arena in (False, True):
        series = table.new_series("arena" if with_arena else "classic")
        for size in list_sizes:
            payload = make_payload(size)
            session_cm = (
                Partitioner(PartitionOptions(name="fig4b_arena"))
                .partition(list(ARENA_MICRO_CLASSES))
                .start()
            )
            with session_cm as session:
                attach_batching(
                    session, BatchPolicy(max_batch=max_batch, window_ns=1e12)
                )
                if with_arena:
                    attach_arena(session, capacity=64 << 20)
                with session.on_side(Side.UNTRUSTED):
                    sink = TrustedSink()
                    span = session.platform.measure()
                    for _ in range(invocations):
                        sink.push(payload)
                    session.runtime.batcher.flush()
                    series.add(size, span.elapsed_s())
                    if sink.total_pushed() != invocations * size:
                        raise AssertionError(
                            "batched pushes were dropped: "
                            f"{sink.total_pushed()} != {invocations * size}"
                        )
    table.notes += f"; classic/arena mean {table.mean_ratio('classic', 'arena'):.2f}x"
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_fig4a().format())
    print()
    print(run_fig4b().format())
    print()
    print(run_fig4b_arena().format())


if __name__ == "__main__":  # pragma: no cover
    main()
