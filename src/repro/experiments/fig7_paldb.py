"""Fig. 7 / Fig. 10 — PalDB read+write time across configurations (§6.5, §6.6).

Writes then reads N key/value pairs (keys: random-int strings, values:
128-char strings) in each configuration:

- ``NoSGX``       — native image on the host;
- ``NoPart``      — unpartitioned native image inside the enclave;
- ``Part(RTWU)``  — reader trusted / writer untrusted;
- ``Part(RUWT)``  — reader untrusted / writer trusted;
- ``SCONE+JVM``   — unmodified app on an in-enclave JVM (Fig. 10 only).

Expected shape: RTWU ~2.5x and RUWT ~1.04x over NoPart; RTWU ~6.6x,
RUWT ~2.8x and NoPart ~2.6x over SCONE+JVM; RUWT performs ~23x more
ocalls than RTWU.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.apps.paldb import KvWorkload
from repro.apps.paldb.workload import (
    PALDB_RTWU_CLASSES,
    PALDB_RUWT_CLASSES,
    ReaderLogic,
    TrustedDBReader,
    TrustedDBWriter,
    UntrustedDBReader,
    UntrustedDBWriter,
    WriterLogic,
)
from repro.baselines import native_session, scone_jvm_session
from repro.batching import BatchPolicy, attach_batching
from repro.core import Partitioner, PartitionOptions
from repro.core.arena import attach_arena
from repro.experiments.common import ExperimentTable

DEFAULT_KEY_COUNTS = tuple(range(10_000, 100_001, 10_000))
DEFAULT_ARENA_KEY_COUNTS = (2_000, 6_000, 12_000)


@dataclass(frozen=True)
class PaldbRun:
    """One configuration run: total virtual time + ocall count."""

    seconds: float
    ocalls: int


def _run_one(
    writer_cls, reader_cls, session_factory: Callable, keys, values
) -> PaldbRun:
    with session_factory() as session:
        workdir = tempfile.mkdtemp(prefix="paldb_")
        path = os.path.join(workdir, "store.paldb")
        written = writer_cls(path).write_all(keys, values)
        found, _checksum = reader_cls(path).read_all(keys)
        if written != len(keys) or found != len(keys):
            raise AssertionError(
                f"store round-trip failed: wrote {written}, found {found}"
            )
        ocalls = int(session.platform.ledger.count("transition.ocall"))
        return PaldbRun(seconds=session.platform.now_s, ocalls=ocalls)


def _configurations(include_scone: bool) -> Dict[str, Tuple]:
    configs: Dict[str, Tuple] = {
        "NoSGX": (
            UntrustedDBWriter,
            UntrustedDBReader,
            lambda: native_session(name="paldb"),
        ),
        "NoPart": (
            UntrustedDBWriter,
            UntrustedDBReader,
            lambda: Partitioner(PartitionOptions(name="paldb_nopart"))
            .unpartitioned([WriterLogic, ReaderLogic])
            .start(),
        ),
        "Part(RTWU)": (
            UntrustedDBWriter,
            TrustedDBReader,
            lambda: Partitioner(PartitionOptions(name="paldb_rtwu"))
            .partition(list(PALDB_RTWU_CLASSES))
            .start(),
        ),
        "Part(RUWT)": (
            TrustedDBWriter,
            UntrustedDBReader,
            lambda: Partitioner(PartitionOptions(name="paldb_ruwt"))
            .partition(list(PALDB_RUWT_CLASSES))
            .start(),
        ),
    }
    if include_scone:
        configs["SCONE+JVM"] = (
            UntrustedDBWriter,
            UntrustedDBReader,
            lambda: scone_jvm_session(name="paldb_scone"),
        )
    return configs


def run_fig7(
    key_counts: Sequence[int] = DEFAULT_KEY_COUNTS,
    include_scone: bool = False,
) -> ExperimentTable:
    title = "Fig. 10" if include_scone else "Fig. 7"
    table = ExperimentTable(
        title=f"{title} — PalDB time to read and write K/V pairs",
        x_label="keys",
        y_label="run time (s)",
        notes="values are 128-char strings; totals include session start",
    )
    configs = _configurations(include_scone)
    ocall_series = {}
    for name in configs:
        table.new_series(name)
        ocall_series[name] = []
    for count in key_counts:
        keys, values = KvWorkload(n_keys=count).generate()
        for name, (writer_cls, reader_cls, factory) in configs.items():
            run = _run_one(writer_cls, reader_cls, factory, keys, values)
            table.get(name).add(count, run.seconds)
            ocall_series[name].append(run.ocalls)
    rtwu = sum(ocall_series.get("Part(RTWU)", [0])) or 1
    ruwt = sum(ocall_series.get("Part(RUWT)", [0]))
    table.notes += f"; ocalls RUWT/RTWU = {ruwt / rtwu:.1f}x (paper ~23x)"
    return table


def run_fig10(key_counts: Sequence[int] = DEFAULT_KEY_COUNTS) -> ExperimentTable:
    """Fig. 10 — Fig. 7's sweep with the SCONE+JVM baseline added."""
    return run_fig7(key_counts=key_counts, include_scone=True)


def run_fig7_arena(
    key_counts: Sequence[int] = DEFAULT_ARENA_KEY_COUNTS,
    max_batch: int = 16,
) -> ExperimentTable:
    """Fig. 7's RUWT write path repriced for the zero-copy fast path.

    ``Part(RUWT)`` pays one serialized ecall per ``put_record`` — the
    configuration the paper singles out for its ocall/serialization
    bill. Both legs batch the record stream under the same policy; the
    arena leg stages key and value strings into the shared buffer, so
    the batched crossing pays ciphertext+MAC instead of per-call
    serialization.
    """
    table = ExperimentTable(
        title="Fig. 7 (arena) — PalDB RUWT batched writes, classic vs arena",
        x_label="keys",
        y_label="run time (s)",
        notes="values are 128-char strings; batched record-at-a-time writes",
    )
    for with_arena in (False, True):
        series = table.new_series("arena" if with_arena else "classic")
        for count in key_counts:
            keys, values = KvWorkload(n_keys=count).generate()
            session_cm = (
                Partitioner(PartitionOptions(name="fig7_arena"))
                .partition(list(PALDB_RUWT_CLASSES))
                .start()
            )
            with session_cm as session:
                workdir = tempfile.mkdtemp(prefix="paldb_arena_")
                path = os.path.join(workdir, "store.paldb")
                writer = TrustedDBWriter(path)
                writer.begin_store()
                attach_batching(
                    session, BatchPolicy(max_batch=max_batch, window_ns=1e12)
                )
                if with_arena:
                    attach_arena(session, capacity=8 << 20)
                span = session.platform.measure()
                for key, value in zip(keys, values):
                    writer.put_record(key, value)
                written = writer.finish_store()  # barrier: drains the batch
                series.add(count, span.elapsed_s())
                found, _checksum = UntrustedDBReader(path).read_all(keys)
                if written != count or found != count:
                    raise AssertionError(
                        f"store round-trip failed: wrote {written}, "
                        f"found {found} of {count}"
                    )
    table.notes += f"; classic/arena mean {table.mean_ratio('classic', 'arena'):.2f}x"
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(run_fig10().format(y_format="{:.3f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
