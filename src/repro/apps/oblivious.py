"""Opaque-style oblivious operators (related work [60], §3).

Opaque hardens Spark SQL against *access-pattern leakage*: even with
encrypted data, the order of memory touches reveals information, so
sensitive tables are processed with oblivious operators whose access
pattern depends only on the input *size*. This module implements the
classic building blocks:

- :func:`bitonic_sort` — a sorting network: the compare-exchange
  sequence is a pure function of ``n`` (tests record the trace and
  verify it is identical for different inputs);
- :func:`oblivious_filter` — constant-touch filtering that hides the
  selectivity by always writing every slot;
- :class:`ObliviousTable` (**@trusted**) — the enclave-resident table
  exposing the operators, with cost accounting reflecting the extra
  data movement obliviousness costs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.annotations import ambient_context, trusted
from repro.errors import ReproError


class ObliviousError(ReproError):
    """Invalid oblivious-operator usage."""


#: Cost per compare-exchange (branchless min/max + writes).
_COMPARE_EXCHANGE_CYCLES = 14.0
_COMPARE_EXCHANGE_MEM = 32.0

#: Sentinel used for padding to power-of-two sizes.
_PAD = float("inf")


def _next_pow2(n: int) -> int:
    size = 1
    while size < n:
        size <<= 1
    return size


def bitonic_sort(
    values: Sequence[float],
    trace: Optional[List[Tuple[int, int]]] = None,
) -> List[float]:
    """Sort via a bitonic network; O(n log² n) compare-exchanges.

    ``trace`` (if given) collects every (i, j) compare-exchange pair —
    the *entire* memory access pattern of the sort. Two inputs of equal
    length produce identical traces: nothing about the data leaks
    through the pattern.
    """
    n = len(values)
    if n == 0:
        return []
    size = _next_pow2(n)
    data = list(values) + [_PAD] * (size - n)

    k = 2
    while k <= size:
        j = k >> 1
        while j > 0:
            for i in range(size):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    if trace is not None:
                        trace.append((i, partner))
                    a, b = data[i], data[partner]
                    # Branchless-style oblivious exchange: both slots
                    # are always written.
                    low, high = (a, b) if a <= b else (b, a)
                    if ascending:
                        data[i], data[partner] = low, high
                    else:
                        data[i], data[partner] = high, low
            j >>= 1
        k <<= 1
    # The final merge is ascending, so padding (+inf) sits at the tail.
    # (Finite inputs assumed; +inf values would merge with the padding.)
    return data[:n]


def oblivious_filter(
    values: Sequence[float], predicate: Callable[[float], bool]
) -> Tuple[List[float], int]:
    """Filter without revealing selectivity through the access pattern.

    Every slot is read and written exactly once: matches are written to
    the output buffer, non-matches overwrite a dummy slot. Returns
    (dense matches, match count) — the dense compaction itself is done
    with a bitonic sort on (flag, value) pairs, also oblivious.
    """
    n = len(values)
    flagged: List[float] = []
    dummy = 0.0
    count = 0
    for value in values:
        keep = bool(predicate(value))
        count += keep
        # Always two writes: the flagged copy and the dummy sink.
        flagged.append(value if keep else _PAD)
        dummy = value
    del dummy
    compacted = bitonic_sort(flagged)
    return [v for v in compacted[:count]], count


@trusted
class ObliviousTable:
    """Enclave-resident column with oblivious operators (Opaque's
    sensitive-table mode)."""

    def __init__(self, values: List[float]) -> None:
        if not isinstance(values, list):
            raise ObliviousError("table takes a list of numbers")
        self.values = [float(v) for v in values]

    def sort(self) -> List[float]:
        """Obliviously sort the column; charges the network's cost."""
        self._charge_network(len(self.values))
        self.values = bitonic_sort(self.values)
        return list(self.values)

    def filter_greater_than(self, threshold: float) -> List[float]:
        """Oblivious selection: pattern independent of selectivity."""
        ctx = ambient_context()
        ctx.compute(
            len(self.values) * _COMPARE_EXCHANGE_CYCLES,
            mem_bytes=len(self.values) * _COMPARE_EXCHANGE_MEM,
        )
        self._charge_network(len(self.values))
        matches, _ = oblivious_filter(self.values, lambda v: v > threshold)
        return matches

    def size(self) -> int:
        return len(self.values)

    def _charge_network(self, n: int) -> None:
        """O(n log^2 n) compare-exchanges, each touching two slots."""
        ctx = ambient_context()
        if n <= 1:
            return
        size = _next_pow2(n)
        log = size.bit_length() - 1
        exchanges = (size // 2) * log * (log + 1) // 2
        ctx.compute(
            exchanges * _COMPARE_EXCHANGE_CYCLES,
            mem_bytes=exchanges * _COMPARE_EXCHANGE_MEM,
        )


OBLIVIOUS_CLASSES = (ObliviousTable,)
