"""Plinius-style secure ML training (related work [59], §3).

Plinius — by the Montsalvat authors — manually partitions an ML
library for enclaves: model weights and the training step stay inside,
data loading and persistence stay outside. The same split here:

- :class:`TrustedModel` (**@trusted**) — linear-regression weights and
  the SGD update; weights only leave sealed (mirroring Plinius's
  persistent-memory checkpoints);
- :class:`DataLoader` (**@untrusted**) — reads mini-batches from a real
  on-disk dataset through the shim.

Training really converges; tests check the recovered coefficients.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.annotations import ambient_context, trusted, untrusted
from repro.core.shim import ShimLibc
from repro.errors import ReproError


class TrainingError(ReproError):
    """Bad dataset or training configuration."""


#: Per-sample SGD cost (gradient + update) and traffic.
_SGD_SAMPLE_CYCLES = 220.0
_SGD_SAMPLE_MEM = 64.0

#: On-disk sample: (features..., label) as float32.
_FLOAT = struct.Struct("<f")


def write_dataset(
    path: str,
    weights: Sequence[float],
    n_samples: int,
    noise: float = 0.01,
    seed: int = 13,
) -> None:
    """Materialise a synthetic linear dataset on disk (real file)."""
    rng = np.random.RandomState(seed)
    true_weights = np.asarray(weights, dtype=np.float64)
    features = rng.uniform(-1.0, 1.0, size=(n_samples, len(true_weights)))
    labels = features @ true_weights + rng.normal(0.0, noise, size=n_samples)
    data = np.column_stack([features, labels]).astype(np.float32)
    with open(path, "wb") as handle:
        handle.write(struct.pack("<II", n_samples, len(true_weights)))
        handle.write(data.tobytes())


@untrusted
class DataLoader:
    """Streams mini-batches from the on-disk dataset (untrusted I/O)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def read_header(self) -> Tuple[int, int]:
        libc = ShimLibc(ambient_context())
        with libc.fopen(self.path, "rb") as handle:
            raw = handle.read(8)
        if len(raw) != 8:
            raise TrainingError("dataset header truncated")
        return struct.unpack("<II", raw)

    def load_batch(self, batch_index: int, batch_size: int) -> List[List[float]]:
        """One mini-batch as rows of [features..., label]."""
        n_samples, n_features = self.read_header()
        row_bytes = (n_features + 1) * 4
        start = batch_index * batch_size
        if start >= n_samples:
            raise TrainingError(f"batch {batch_index} beyond the dataset")
        count = min(batch_size, n_samples - start)
        libc = ShimLibc(ambient_context())
        with libc.fopen(self.path, "rb") as handle:
            handle.seek(8 + start * row_bytes)
            raw = handle.read(count * row_bytes)
        rows = np.frombuffer(raw, dtype=np.float32).reshape(count, n_features + 1)
        return [[float(v) for v in row] for row in rows]


@trusted
class TrustedModel:
    """Linear model trained by SGD inside the enclave."""

    def __init__(self, n_features: int, learning_rate: float = 0.1) -> None:
        if n_features <= 0:
            raise TrainingError("model needs at least one feature")
        if learning_rate <= 0:
            raise TrainingError("learning rate must be positive")
        self.weights = [0.0] * n_features
        self.learning_rate = learning_rate
        self.samples_seen = 0

    def train_batch(self, batch: List[List[float]]) -> float:
        """One SGD pass over a mini-batch; returns the batch MSE."""
        ctx = ambient_context()
        if not batch:
            raise TrainingError("empty batch")
        ctx.compute(
            len(batch) * _SGD_SAMPLE_CYCLES,
            mem_bytes=len(batch) * _SGD_SAMPLE_MEM,
        )
        weights = np.asarray(self.weights)
        rows = np.asarray(batch)
        features, labels = rows[:, :-1], rows[:, -1]
        predictions = features @ weights
        errors = predictions - labels
        gradient = features.T @ errors / len(batch)
        weights = weights - self.learning_rate * gradient
        self.weights = [float(w) for w in weights]
        self.samples_seen += len(batch)
        return float(np.mean(errors**2))

    def get_weights(self) -> List[float]:
        """Weights leave as plain floats here; production deployments
        would seal them (see repro.sgx.sealing) like Plinius's
        persistent-memory mirroring."""
        return list(self.weights)

    def predict(self, features: List[float]) -> float:
        return float(np.dot(self.weights, features))


def train(
    dataset_path: str,
    n_features: int,
    epochs: int = 5,
    batch_size: int = 32,
    learning_rate: float = 0.1,
) -> Tuple[List[float], float]:
    """Full training loop; returns (weights, final batch MSE)."""
    loader = DataLoader(dataset_path)
    n_samples, file_features = loader.read_header()
    if file_features != n_features:
        raise TrainingError(
            f"dataset has {file_features} features, model expects {n_features}"
        )
    model = TrustedModel(n_features, learning_rate=learning_rate)
    n_batches = n_samples // batch_size
    if not n_batches:
        raise TrainingError("dataset smaller than one batch")
    mse = float("inf")
    for _ in range(epochs):
        for batch_index in range(n_batches):
            batch = loader.load_batch(batch_index, batch_size)
            mse = model.train_batch(batch)
    return model.get_weights(), mse


PLINIUS_CLASSES = (TrustedModel, DataLoader)
