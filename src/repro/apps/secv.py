"""Value-granular re-partitions of bank and SecureKeeper (SecV-style).

Montsalvat partitions at *class* granularity: one secret field drags the
whole class — and every method reachable from it — into the enclave
image, and every call on it across the boundary. SecV (PAPERS.md,
arXiv:2310.15582) partitions at *value* granularity instead: secrets
travel as :func:`~repro.core.secure` values that seal themselves on
every crossing, so the classes that merely *carry* them can stay
untrusted.

This module re-expresses two bundled applications that way, so
``python -m repro secv`` can measure what the finer granularity buys:

- **bank** — :class:`SettlementVault` is the only trusted class; the
  accounts and the ledger move to the untrusted image, holding their
  balances as sealed :class:`~repro.core.secure.SecureValue` blobs and
  accumulating public deltas locally. Only opening, settling and
  totalling — the operations that actually touch the secret — cross.
- **SecureKeeper** — payload protection stops being enclave *code*:
  znode payloads are ``secure()`` values sealed by the wire layer, so
  the trusted side shrinks to :class:`AuditVault` (the in-enclave audit
  trail, the one feature that genuinely needs enclave state).

Both variants compute bit-identical results to their class-granular
originals (:mod:`repro.apps.bank`, :mod:`repro.apps.securekeeper`);
``repro.experiments.secv_exp`` asserts that, then compares TCB bytes
and boundary crossings.

Deliberately **not** in the linter's ``BUNDLED_APPS``: these are
experiment subjects, not lint fixtures.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.securekeeper import ZNodeStore
from repro.batching import batchable
from repro.core.annotations import ambient_context, trusted, untrusted
from repro.core.secure import SecureValue, declassify, secure

#: In-enclave audit-record cost — matches ``PayloadVault.record_access``
#: in :mod:`repro.apps.securekeeper` so the two granularities price the
#: shared audit feature identically.
AUDIT_RECORD_CYCLES = 650.0


# -- bank, value-granular -----------------------------------------------------


@trusted
class SettlementVault:
    """The bank's entire enclave: mint, settle and total secure balances.

    Compare :class:`repro.apps.bank.Account` +
    :class:`repro.apps.bank.AccountRegistry` (seven trusted methods,
    one crossing per balance update): here the trusted surface is three
    operations, and updates between settlements never cross at all.
    """

    def __init__(self) -> None:
        self.settlements = 0

    def open_account(self, owner: str, opening: int) -> SecureValue:
        """Mint a sealed opening balance; it leaves only sealed."""
        return secure(opening, f"balance:{owner}")

    def settle(self, balance: SecureValue, delta: int) -> SecureValue:
        """Fold an accumulated public delta into a sealed balance."""
        self.settlements += 1
        current = declassify(balance, "in-enclave settlement")
        return balance.derive("settled", current + delta)

    def total(self, balances: Tuple[SecureValue, ...]) -> int:
        """Aggregate sealed balances; only the *sum* is declassified."""
        return sum(
            declassify(balance, "in-enclave aggregation")
            for balance in balances
        )


@untrusted
class ValueAccount:
    """An account living on the untrusted heap.

    The balance is a sealed blob the account cannot read; updates
    accumulate as a plain pending delta (amounts are public in this
    model — the *balances* are the secret) and fold in at settlement.
    """

    def __init__(self, owner: str, vault: SettlementVault, opening: int) -> None:
        self.owner = owner
        self.sealed = vault.open_account(owner, opening)
        self.pending = 0

    def update_balance(self, amount: int) -> None:
        """Record a signed amount locally — no enclave crossing."""
        self.pending += amount

    def settle(self, vault: SettlementVault) -> None:
        """Fold the pending delta into the sealed balance (one ecall)."""
        if self.pending:
            self.sealed = vault.settle(self.sealed, self.pending)
            self.pending = 0

    def sealed_balance(self) -> SecureValue:
        return self.sealed


@untrusted
class ValueLedger:
    """Untrusted registry of value-granular accounts."""

    def __init__(self) -> None:
        self.accounts: List[ValueAccount] = []

    def add_account(self, account: ValueAccount) -> None:
        self.accounts.append(account)

    def count(self) -> int:
        return len(self.accounts)

    def settle_all(self, vault: SettlementVault) -> None:
        for account in self.accounts:
            account.settle(vault)

    def sealed_balances(self) -> Tuple[SecureValue, ...]:
        """The sealed blobs, for the application's aggregation exit.

        Deliberately *not* a declassified total: the neutral caller
        asks :meth:`SettlementVault.total` for that, so the only plain
        exit lives in composition code, outside the annotated universe.
        """
        return tuple(account.sealed_balance() for account in self.accounts)


# -- SecureKeeper, value-granular ---------------------------------------------


@trusted
class AuditVault:
    """The value-granular keeper's entire enclave: the audit trail.

    Encryption stops being enclave *code* — payloads cross as
    ``secure()`` values the wire layer seals — so of
    :class:`repro.apps.securekeeper.PayloadVault`'s six trusted methods
    only the censorship-resistant audit log remains.
    """

    def __init__(self) -> None:
        self._audit: List[str] = []

    @batchable
    def record_access(self, path: str) -> None:
        """Append one entry to the in-enclave audit trail."""
        ctx = ambient_context()
        ctx.compute(AUDIT_RECORD_CYCLES, mem_bytes=len(path) + 24)
        self._audit.append(path)

    def audit_count(self) -> int:
        return len(self._audit)


class ValueKeeperClient:
    """Neutral client: secure-value payloads over the untrusted store.

    ``put`` wraps the plaintext with :func:`secure` and hands the
    sealed value to the (untrusted) tree; ``read`` is the application's
    single declassification point. Contrast
    :class:`repro.apps.securekeeper.SecureKeeperClient`, which pays an
    encrypt/decrypt ecall per operation.
    """

    def __init__(
        self, vault: AuditVault, store: ZNodeStore, audit: bool = False
    ) -> None:
        self.vault = vault
        self.store = store
        self.audit = audit

    def put(self, path: str, plaintext: str) -> None:
        if self.audit:
            self.vault.record_access(path)
        blob = secure(plaintext, path)
        if self.store.exists(path):
            _, version = self.store.get(path)
            self.store.set(path, blob, version)
        else:
            self.store.create(path, blob)

    def read(self, path: str) -> str:
        if self.audit:
            self.vault.record_access(path)
        blob, _ = self.store.get(path)
        return declassify(blob, f"keeper read of {path}")


#: Class universes handed to the partitioner, one per variant.
SECV_BANK_CLASSES = (SettlementVault, ValueAccount, ValueLedger)
SECV_KEEPER_CLASSES = (AuditVault, ZNodeStore)
