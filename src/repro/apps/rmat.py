"""RMAT recursive synthetic graph generator (Chakrabarti et al., §6.5).

The paper evaluates GraphChi's PageRank on RMAT-generated directed
graphs. RMAT drops each edge into one quadrant of the adjacency matrix
recursively with probabilities (a, b, c, d), producing the skewed
degree distributions of real-world graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True)
class RmatParams:
    """Quadrant probabilities; the classic defaults are (.57,.19,.19,.05)."""

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise GraphError(f"RMAT probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise GraphError("RMAT probabilities must be non-negative")


def generate_rmat(
    n_vertices: int,
    n_edges: int,
    params: RmatParams = RmatParams(),
    seed: int = 7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``n_edges`` directed edges over ``n_vertices`` vertices.

    ``n_vertices`` is rounded up to a power of two internally; returned
    vertex ids are all < the requested ``n_vertices`` (edges falling
    outside are remapped by modulo, the standard practical fix).
    Returns ``(sources, destinations)`` as int64 arrays.
    """
    if n_vertices <= 0 or n_edges <= 0:
        raise GraphError("graph dimensions must be positive")
    levels = max(1, int(np.ceil(np.log2(n_vertices))))
    rng = np.random.RandomState(seed)

    sources = np.zeros(n_edges, dtype=np.int64)
    destinations = np.zeros(n_edges, dtype=np.int64)
    # Vectorised recursion: one random draw per (edge, level).
    draws = rng.random_sample((levels, n_edges))
    p = params
    for level in range(levels):
        bit = 1 << (levels - level - 1)
        draw = draws[level]
        # Quadrants: a=(0,0) b=(0,1) c=(1,0) d=(1,1).
        go_right = ((draw >= p.a) & (draw < p.a + p.b)) | (draw >= p.a + p.b + p.c)
        go_down = draw >= p.a + p.b
        destinations += bit * go_right
        sources += bit * go_down

    sources %= n_vertices
    destinations %= n_vertices
    # Remove self-loops by nudging the destination (keeps edge count).
    loops = sources == destinations
    destinations[loops] = (destinations[loops] + 1) % n_vertices
    return sources, destinations
