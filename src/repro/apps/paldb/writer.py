"""Write path of the store: regular buffered I/O, one write per record.

PalDB writes the data section with ordinary file I/O — the behaviour
that makes a *trusted* writer expensive in SGX: every record write from
inside the enclave is an ocall through the shim (§6.5: the RUWT scheme
performs ~23x more ocalls than RTWU).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.paldb import format as fmt
from repro.core.shim import ShimLibc
from repro.errors import StoreError

#: CPU cycles to hash + frame one record.
_PUT_CPU_CYCLES = 1_400.0


class StoreWriter:
    """Builds a write-once store file."""

    def __init__(self, path: str, libc: ShimLibc) -> None:
        self.path = path
        self._libc = libc
        self._file = libc.fopen(path, "wb")
        self._file.write(b"\x00" * fmt.HEADER_SIZE)  # header placeholder
        self._index: Dict[int, tuple] = {}
        self._data_cursor = fmt.HEADER_SIZE
        self._n_keys = 0
        self._closed = False

    def put(self, key: bytes, value: bytes) -> None:
        """Append one record (write-once: duplicate keys are errors)."""
        self._require_open()
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise StoreError("keys and values are byte strings")
        key_hash = fmt.hash_key(key)
        if key_hash in self._index and self._index[key_hash][2] == key:
            raise StoreError(f"duplicate key {key!r}: the store is write-once")
        record = fmt.pack_record(key, value)
        self._libc.ctx.compute(_PUT_CPU_CYCLES, mem_bytes=len(record))
        self._file.write(record)  # regular I/O: one syscall per record
        self._index[key_hash] = (self._data_cursor, len(record), key)
        self._data_cursor += len(record)
        self._n_keys += 1

    def close(self) -> None:
        """Write the index and header, then close the file."""
        if self._closed:
            return
        n_buckets = fmt.bucket_count(self._n_keys)
        slots: list = [None] * n_buckets
        for key_hash, (offset, length, _key) in self._index.items():
            position = key_hash % n_buckets
            while slots[position] is not None:
                position = (position + 1) % n_buckets
            slots[position] = (key_hash, offset, length)
        index_blob = b"".join(
            fmt.pack_slot(*slot) if slot else fmt.pack_slot(0, 0, 0)
            for slot in slots
        )
        index_offset = self._data_cursor
        self._libc.ctx.compute(
            n_buckets * 40.0, mem_bytes=len(index_blob)
        )  # table construction
        self._file.write(index_blob)
        header = fmt.StoreHeader(
            n_keys=self._n_keys,
            n_buckets=n_buckets,
            index_offset=index_offset,
            data_offset=fmt.HEADER_SIZE,
        )
        self._file.seek(0)
        self._file.write(header.pack())
        self._file.flush()
        self._file.close()
        self._closed = True

    @property
    def n_keys(self) -> int:
        return self._n_keys

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError("store already closed (write-once)")
