"""On-disk format of the write-once store.

Layout::

    [header 40B][index: n_buckets * 20B slots][data: records]

Header: magic (8B), version (u32), n_keys (u32), n_buckets (u32),
index_offset (u64), data_offset (u64), padding to 40.

Index slot: key_hash (u64), record_offset (u64), record_length (u32);
empty slots have record_length == 0. Collisions resolve by linear
probing, load factor <= 0.7.

Record: key_length (u32), key bytes, value bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import StoreError

MAGIC = b"PALDBSIM"
VERSION = 1
HEADER_SIZE = 40
SLOT_SIZE = 20
LOAD_FACTOR = 0.7

_HEADER_STRUCT = struct.Struct("<8sIIIQQ")
_SLOT_STRUCT = struct.Struct("<QQI")
_RECORD_PREFIX = struct.Struct("<I")


@dataclass(frozen=True)
class StoreHeader:
    """Parsed store header."""

    n_keys: int
    n_buckets: int
    index_offset: int
    data_offset: int

    def pack(self) -> bytes:
        packed = _HEADER_STRUCT.pack(
            MAGIC, VERSION, self.n_keys, self.n_buckets, self.index_offset, self.data_offset
        )
        return packed.ljust(HEADER_SIZE, b"\x00")

    @classmethod
    def unpack(cls, raw: bytes) -> "StoreHeader":
        if len(raw) < HEADER_SIZE:
            raise StoreError("truncated store header")
        magic, version, n_keys, n_buckets, index_offset, data_offset = (
            _HEADER_STRUCT.unpack(raw[: _HEADER_STRUCT.size])
        )
        if magic != MAGIC:
            raise StoreError(f"bad magic {magic!r}: not a store file")
        if version != VERSION:
            raise StoreError(f"unsupported store version {version}")
        return cls(
            n_keys=n_keys,
            n_buckets=n_buckets,
            index_offset=index_offset,
            data_offset=data_offset,
        )


def hash_key(key: bytes) -> int:
    """FNV-1a, 64-bit — deterministic across processes (unlike hash())."""
    value = 0xCBF29CE484222325
    for byte in key:
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value or 1  # zero is reserved for empty slots


def bucket_count(n_keys: int) -> int:
    """Power-of-two bucket count keeping the load factor bounded."""
    needed = max(8, int(n_keys / LOAD_FACTOR) + 1)
    count = 8
    while count < needed:
        count <<= 1
    return count


def pack_slot(key_hash: int, offset: int, length: int) -> bytes:
    return _SLOT_STRUCT.pack(key_hash, offset, length)


def unpack_slot(raw: bytes) -> tuple:
    if len(raw) != SLOT_SIZE:
        raise StoreError("bad slot size")
    return _SLOT_STRUCT.unpack(raw)


def pack_record(key: bytes, value: bytes) -> bytes:
    return _RECORD_PREFIX.pack(len(key)) + key + value


def unpack_record(raw: bytes) -> tuple:
    """(key, value) from a full record buffer."""
    if len(raw) < _RECORD_PREFIX.size:
        raise StoreError("truncated record")
    (key_length,) = _RECORD_PREFIX.unpack(raw[: _RECORD_PREFIX.size])
    key_end = _RECORD_PREFIX.size + key_length
    if key_end > len(raw):
        raise StoreError("truncated record key")
    return raw[_RECORD_PREFIX.size : key_end], raw[key_end:]
