"""PalDB-like embeddable write-once key-value store (§6.5).

LinkedIn's PalDB is a read-optimised store: reads go through a
memory-mapped file, writes use regular buffered I/O. This reimplementation
keeps both properties — they are what makes the paper's two partitioning
schemes (reader-trusted RTWU vs writer-trusted RUWT) behave so differently
inside SGX.
"""

from repro.apps.paldb.format import StoreHeader, hash_key
from repro.apps.paldb.reader import StoreReader
from repro.apps.paldb.workload import (
    PALDB_RTWU_CLASSES,
    PALDB_RUWT_CLASSES,
    KvWorkload,
    ReaderLogic,
    WriterLogic,
)
from repro.apps.paldb.writer import StoreWriter

__all__ = [
    "StoreHeader",
    "hash_key",
    "StoreReader",
    "StoreWriter",
    "KvWorkload",
    "ReaderLogic",
    "WriterLogic",
    "PALDB_RTWU_CLASSES",
    "PALDB_RUWT_CLASSES",
]
