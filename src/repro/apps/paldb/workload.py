"""PalDB application classes and workloads for the paper's evaluation.

§6.5 introduces ``DBReader`` and ``DBWriter`` classes over PalDB's API
and partitions along them in two schemes:

- **RTWU** — reader trusted, writer untrusted (the fast scheme: the
  enclave is relieved of write-induced ocalls);
- **RUWT** — reader untrusted, writer trusted (writes relay out of the
  enclave record by record).

The shared logic lives in neutral base classes; the annotated leaf
classes select the scheme. The driver calls the coarse ``write_all`` /
``read_all`` methods, so a partitioned run performs one RMI per phase
plus the store's own I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.paldb.reader import StoreReader
from repro.apps.paldb.writer import StoreWriter
from repro.batching import batchable
from repro.core.annotations import ambient_context, trusted, untrusted
from repro.core.shim import ShimLibc
from repro.errors import StoreError


class WriterLogic:
    """Writes a batch of key/value pairs into a fresh store file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._open_writer = None

    def write_all(self, keys: Sequence[str], values: Sequence[str]) -> int:
        """Write every pair; returns the number of records written."""
        libc = ShimLibc(ambient_context())
        with StoreWriter(self.path, libc) as writer:
            for key, value in zip(keys, values):
                writer.put(key.encode("utf-8"), value.encode("utf-8"))
            count = writer.n_keys
        return count

    # -- record-at-a-time API --------------------------------------------------
    #
    # The driver-side loop the paper's RUWT scheme actually performs:
    # one relay per record. Chatty by construction — which is exactly
    # what makes it the batching ablation's worst/best case.

    def begin_store(self) -> None:
        """Open the store file for record-at-a-time writing."""
        if self._open_writer is not None:
            raise StoreError(f"store {self.path} already open for writing")
        libc = ShimLibc(ambient_context())
        self._open_writer = StoreWriter(self.path, libc).__enter__()

    @batchable
    def put_record(self, key: str, value: str) -> None:
        """Write one record (void: eligible for call coalescing)."""
        if self._open_writer is None:
            raise StoreError("put_record before begin_store")
        self._open_writer.put(key.encode("utf-8"), value.encode("utf-8"))

    def finish_store(self) -> int:
        """Seal the store; returns records written (drains any batch)."""
        if self._open_writer is None:
            raise StoreError("finish_store before begin_store")
        writer, self._open_writer = self._open_writer, None
        count = writer.n_keys
        writer.__exit__(None, None, None)
        return count


class ReaderLogic:
    """Reads a batch of keys back from a finished store file."""

    def __init__(self, path: str) -> None:
        self.path = path

    def read_all(self, keys: Sequence[str]) -> Tuple[int, int]:
        """Read every key; returns (found count, checksum of lengths)."""
        libc = ShimLibc(ambient_context())
        reader = StoreReader(self.path, libc)
        found = 0
        checksum = 0
        for key in keys:
            value = reader.get(key.encode("utf-8"))
            if value is not None:
                found += 1
                checksum = (checksum + len(value)) & 0xFFFFFFFF
        return found, checksum


@trusted
class TrustedDBReader(ReaderLogic):
    """RTWU's reader: runs inside the enclave, reads via mmap."""


@untrusted
class UntrustedDBWriter(WriterLogic):
    """RTWU's writer: regular I/O stays outside the enclave."""


@trusted
class TrustedDBWriter(WriterLogic):
    """RUWT's writer: every record write relays out as an ocall."""


@untrusted
class UntrustedDBReader(ReaderLogic):
    """RUWT's reader: mmap reads on the host."""


#: Class sets for the two partitioning schemes of §6.5.
PALDB_RTWU_CLASSES = (TrustedDBReader, UntrustedDBWriter)
PALDB_RUWT_CLASSES = (TrustedDBWriter, UntrustedDBReader)


@dataclass(frozen=True)
class KvWorkload:
    """The paper's K/V workload: integer-string keys, 128-char values."""

    n_keys: int
    value_length: int = 128
    seed: int = 42

    def generate(self) -> Tuple[List[str], List[str]]:
        rng = np.random.RandomState(self.seed)
        key_ints = rng.randint(0, 2**31 - 1, size=self.n_keys, dtype=np.int64)
        # De-duplicate: the store is write-once.
        key_ints = np.unique(key_ints)
        while len(key_ints) < self.n_keys:
            extra = rng.randint(0, 2**31 - 1, size=self.n_keys, dtype=np.int64)
            key_ints = np.unique(np.concatenate([key_ints, extra]))
        key_ints = key_ints[: self.n_keys]
        rng.shuffle(key_ints)
        keys = [str(k) for k in key_ints]
        letters = rng.randint(97, 123, size=(self.n_keys, self.value_length), dtype=np.uint8)
        values = [row.tobytes().decode("ascii") for row in letters]
        return keys, values
