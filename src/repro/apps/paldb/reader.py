"""Read path of the store: memory-mapped random access.

PalDB optimises reads by memory-mapping the store file; a get() is a
hash probe plus a couple of mapped reads. Inside the enclave these
reads pay MEE traffic and periodic page-in relays but never a
per-record ocall — which is why the reader-trusted scheme (RTWU) is the
fast one (§6.5).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.apps.paldb import format as fmt
from repro.core.shim import ShimLibc
from repro.errors import StoreError

#: CPU cycles per probe (hash + compare).
_GET_CPU_CYCLES = 700.0


class StoreReader:
    """Read-only view over a finished store file."""

    def __init__(self, path: str, libc: ShimLibc) -> None:
        self.path = path
        self._libc = libc
        self._map = libc.mmap_file(path)
        self._header = fmt.StoreHeader.unpack(self._map.read(0, fmt.HEADER_SIZE))
        if self._header.index_offset + self._header.n_buckets * fmt.SLOT_SIZE > self._map.size:
            raise StoreError("corrupt store: index exceeds file size")

    @property
    def n_keys(self) -> int:
        return self._header.n_keys

    def get(self, key: bytes) -> Optional[bytes]:
        """Value for ``key``, or ``None`` when absent."""
        key_hash = fmt.hash_key(key)
        n_buckets = self._header.n_buckets
        position = key_hash % n_buckets
        for _ in range(n_buckets):
            self._libc.ctx.compute(_GET_CPU_CYCLES)
            slot_offset = self._header.index_offset + position * fmt.SLOT_SIZE
            slot_hash, record_offset, record_length = fmt.unpack_slot(
                self._map.read(slot_offset, fmt.SLOT_SIZE)
            )
            if record_length == 0:
                return None  # empty slot: key absent
            if slot_hash == key_hash:
                record = self._map.read(record_offset, record_length)
                record_key, value = fmt.unpack_record(record)
                if record_key == key:
                    return value
            position = (position + 1) % n_buckets
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Full scan in index order (skipping empty slots)."""
        for position in range(self._header.n_buckets):
            slot_offset = self._header.index_offset + position * fmt.SLOT_SIZE
            _, record_offset, record_length = fmt.unpack_slot(
                self._map.read(slot_offset, fmt.SLOT_SIZE)
            )
            if record_length:
                yield fmt.unpack_record(self._map.read(record_offset, record_length))
