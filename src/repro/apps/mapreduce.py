"""VC3-style trustworthy MapReduce (related work [44], §3).

VC3 keeps the Hadoop framework outside the enclave and runs only the
user's Map and Reduce functions inside, over encrypted records. The
same split in Montsalvat's partitioning language:

- :class:`TrustedMapper` / :class:`TrustedReducer` (**@trusted**) —
  the user code plus record encryption; plaintext exists only inside;
- :class:`JobTracker` (**@untrusted**) — splitting, scheduling and the
  shuffle: it moves opaque ciphertext between phases.

The pipeline really computes (word count over real text); tests verify
against a plain in-memory reference.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import defaultdict
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.annotations import ambient_context, trusted, untrusted
from repro.errors import ReproError


class MapReduceError(ReproError):
    """Job configuration or integrity failure."""


#: Record encryption cost (AES-GCM class) and per-record framework cost.
_CRYPT_BYTE_CYCLES = 2.2
_CRYPT_FIXED_CYCLES = 1_800.0
_FRAMEWORK_RECORD_CYCLES = 650.0
_FRAMEWORK_RECORD_MEM = 128.0


def _derive_key(secret: str) -> bytes:
    return hashlib.sha256(secret.encode("utf-8")).digest()


def _crypt(key: bytes, counter: int, data: bytes) -> bytes:
    blocks = []
    index = 0
    while len(blocks) * 32 < len(data):
        blocks.append(
            hashlib.sha256(
                key + counter.to_bytes(8, "big") + index.to_bytes(4, "big")
            ).digest()
        )
        index += 1
    stream = b"".join(blocks)[: len(data)]
    return bytes(a ^ b for a, b in zip(data, stream))


def _seal_record(key: bytes, counter: int, plaintext: bytes) -> bytes:
    ciphertext = _crypt(key, counter, plaintext)
    tag = hmac.new(key, counter.to_bytes(8, "big") + ciphertext, hashlib.sha256)
    return counter.to_bytes(8, "big") + tag.digest()[:16] + ciphertext


def _open_record(key: bytes, blob: bytes) -> bytes:
    if len(blob) < 24:
        raise MapReduceError("sealed record too short")
    counter = int.from_bytes(blob[:8], "big")
    tag, ciphertext = blob[8:24], blob[24:]
    expected = hmac.new(
        key, blob[:8] + ciphertext, hashlib.sha256
    ).digest()[:16]
    if not hmac.compare_digest(expected, tag):
        raise MapReduceError("record authentication failed")
    return _crypt(key, counter, ciphertext)


@trusted
class TrustedMapper:
    """Runs the user's map function inside the enclave (VC3's E⁻)."""

    def __init__(self, job_secret: str) -> None:
        self._key = _derive_key(job_secret)
        self._counter = 0

    def map_split(self, sealed_records: List[bytes]) -> List[Tuple[int, bytes]]:
        """Decrypt a split, run map, emit sealed (partition, kv) pairs."""
        ctx = ambient_context()
        emitted: List[Tuple[int, bytes]] = []
        for blob in sealed_records:
            ctx.compute(_CRYPT_FIXED_CYCLES + len(blob) * _CRYPT_BYTE_CYCLES)
            line = _open_record(self._key, blob).decode("utf-8")
            for word in line.split():
                token = word.strip(".,;:!?\"'()").lower()
                if not token:
                    continue
                payload = f"{token}\x001".encode("utf-8")
                self._counter += 1
                sealed = _seal_record(self._key, 1_000_000 + self._counter, payload)
                ctx.compute(_CRYPT_FIXED_CYCLES + len(payload) * _CRYPT_BYTE_CYCLES)
                partition = int(hashlib.md5(token.encode()).hexdigest(), 16)
                emitted.append((partition % 4, sealed))
        return emitted


@trusted
class TrustedReducer:
    """Runs the user's reduce function inside the enclave."""

    def __init__(self, job_secret: str) -> None:
        self._key = _derive_key(job_secret)
        self._counter = 0

    def reduce_partition(self, sealed_pairs: List[bytes]) -> List[bytes]:
        """Decrypt one partition's pairs, sum per key, emit sealed results."""
        ctx = ambient_context()
        totals: Dict[str, int] = defaultdict(int)
        for blob in sealed_pairs:
            ctx.compute(_CRYPT_FIXED_CYCLES + len(blob) * _CRYPT_BYTE_CYCLES)
            word, _, count = _open_record(self._key, blob).decode("utf-8").partition("\x00")
            totals[word] += int(count)
        results = []
        for word in sorted(totals):
            payload = f"{word}\x00{totals[word]}".encode("utf-8")
            self._counter += 1
            ctx.compute(_CRYPT_FIXED_CYCLES + len(payload) * _CRYPT_BYTE_CYCLES)
            results.append(_seal_record(self._key, 2_000_000 + self._counter, payload))
        return results

    def open_results(self, sealed_results: List[bytes]) -> Dict[str, int]:
        """Decrypt final results (for the authorised result consumer)."""
        ctx = ambient_context()
        out: Dict[str, int] = {}
        for blob in sealed_results:
            ctx.compute(_CRYPT_FIXED_CYCLES + len(blob) * _CRYPT_BYTE_CYCLES)
            word, _, count = _open_record(self._key, blob).decode("utf-8").partition("\x00")
            out[word] = int(count)
        return out


@untrusted
class JobTracker:
    """The untrusted framework: splitting, scheduling, shuffle (Hadoop's
    role in VC3). Only ever touches sealed records."""

    def __init__(self, n_splits: int = 4) -> None:
        if n_splits <= 0:
            raise MapReduceError("need at least one split")
        self.n_splits = n_splits
        self.shuffle_bytes = 0

    def make_splits(self, sealed_records: List[bytes]) -> List[List[bytes]]:
        ctx = ambient_context()
        ctx.compute(len(sealed_records) * _FRAMEWORK_RECORD_CYCLES,
                    mem_bytes=len(sealed_records) * _FRAMEWORK_RECORD_MEM)
        splits: List[List[bytes]] = [[] for _ in range(self.n_splits)]
        for index, record in enumerate(sealed_records):
            splits[index % self.n_splits].append(record)
        return splits

    def shuffle(
        self, mapped: List[List[Tuple[int, bytes]]]
    ) -> Dict[int, List[bytes]]:
        """Group map outputs by partition (the framework's shuffle)."""
        ctx = ambient_context()
        partitions: Dict[int, List[bytes]] = defaultdict(list)
        total = 0
        for map_output in mapped:
            for partition, blob in map_output:
                partitions[partition].append(blob)
                total += len(blob)
        self.shuffle_bytes += total
        ctx.compute(
            sum(len(m) for m in mapped) * _FRAMEWORK_RECORD_CYCLES,
            mem_bytes=total,
        )
        return dict(partitions)


def seal_input(job_secret: str, lines: Sequence[str]) -> List[bytes]:
    """Client-side input preparation (trusted environment, like VC3's
    job submission)."""
    key = _derive_key(job_secret)
    return [
        _seal_record(key, index, line.encode("utf-8"))
        for index, line in enumerate(lines)
    ]


def run_wordcount(
    lines: Sequence[str], job_secret: str = "job-key", n_splits: int = 4
) -> Dict[str, int]:
    """The full VC3 pipeline: seal -> split -> map -> shuffle -> reduce."""
    sealed = seal_input(job_secret, lines)
    tracker = JobTracker(n_splits=n_splits)
    mapper = TrustedMapper(job_secret)
    reducer = TrustedReducer(job_secret)
    splits = tracker.make_splits(sealed)
    mapped = [mapper.map_split(split) for split in splits if split]
    partitions = tracker.shuffle(mapped)
    results: Dict[str, int] = {}
    for partition in sorted(partitions):
        sealed_results = reducer.reduce_partition(partitions[partition])
        results.update(reducer.open_results(sealed_results))
    return results


def wordcount_reference(lines: Sequence[str]) -> Dict[str, int]:
    """Plain reference implementation for validation."""
    totals: Dict[str, int] = defaultdict(int)
    for line in lines:
        for word in line.split():
            token = word.strip(".,;:!?\"'()").lower()
            if token:
                totals[token] += 1
    return dict(totals)


MAPREDUCE_CLASSES = (TrustedMapper, TrustedReducer, JobTracker)
