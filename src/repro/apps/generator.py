"""Synthetic partitioned-program generator (§6.5, Fig. 6).

The paper generates Java applications with 100 classes, each exposing
an instance method that is either CPU-intensive (an FFT over a 1 MB
double array) or I/O-intensive (writing 4 KB to a file), and varies the
fraction of classes annotated @Untrusted. The main method instantiates
every class and invokes its method once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.core.annotations import ambient_context, trusted, untrusted
from repro.core.shim import ShimLibc
from repro.errors import ConfigurationError

MB = 1024 * 1024

#: FFT over a 1 MB double array (2^17 doubles): ~11 MFLOP, vectorised
#: (~0.2 cycles/flop), but heavily memory-bound — log2(N) passes over
#: the array put ~40 MB through the memory system, which is what the
#: MEE amplifies inside the enclave.
_FFT_CPU_CYCLES = 2.2e6
_FFT_MEM_BYTES = 40 * MB
_FFT_WS_BYTES = 2 * MB

#: The I/O method writes 4 KB in small buffered chunks.
_IO_TOTAL_BYTES = 4096
_IO_CHUNK_BYTES = 256


def _cpu_work_body(self) -> float:
    ctx = ambient_context()
    ctx.compute(_FFT_CPU_CYCLES, mem_bytes=_FFT_MEM_BYTES, ws_bytes=_FFT_WS_BYTES)
    # Real (small) FFT so the method has a verifiable result.
    signal = np.sin(np.linspace(0.0, 8.0 * np.pi, 512))
    return float(np.abs(np.fft.rfft(signal)).max())


def _io_work_body(self) -> float:
    ctx = ambient_context()
    libc = ShimLibc(ctx)
    payload = b"\xa5" * _IO_CHUNK_BYTES
    with libc.fopen(self.path, "wb") as handle:
        for _ in range(_IO_TOTAL_BYTES // _IO_CHUNK_BYTES):
            handle.write(payload)
    return float(_IO_TOTAL_BYTES)


def _make_init(workload: str):
    def __init__(self, workdir: str) -> None:
        self.path = os.path.join(workdir, f"{type(self).__name__}.dat")

    __init__.__doc__ = f"Generated {workload} class constructor."
    return __init__


@dataclass(frozen=True)
class GeneratedApp:
    """A generated application plus its driver."""

    classes: Tuple[type, ...]
    workload: str
    pct_untrusted: int

    def drive(self, workdir: str) -> float:
        """The generated main(): instantiate every class, call its
        method once; returns the checksum sum."""
        total = 0.0
        for cls in self.classes:
            instance = cls(workdir)
            total += instance.work()
        return total


def generate_app(
    n_classes: int = 100,
    pct_untrusted: int = 50,
    workload: str = "cpu",
    tag: str = "",
) -> GeneratedApp:
    """Generate an application with ``pct_untrusted`` % @untrusted classes.

    ``workload`` is ``"cpu"`` or ``"io"``. ``tag`` keeps class names
    unique across repeated generations in one process.
    """
    if workload not in ("cpu", "io"):
        raise ConfigurationError(f"workload must be 'cpu' or 'io', got {workload!r}")
    if not 0 <= pct_untrusted <= 100:
        raise ConfigurationError("pct_untrusted must be within [0, 100]")
    if n_classes <= 0:
        raise ConfigurationError("n_classes must be positive")

    n_untrusted = round(n_classes * pct_untrusted / 100)
    body: Callable = _cpu_work_body if workload == "cpu" else _io_work_body
    classes: List[type] = []
    for index in range(n_classes):
        name = f"Gen{workload.capitalize()}{tag}{index}"
        namespace = {
            "__init__": _make_init(workload),
            "work": body,
            "__calls__": {"work": [], "__init__": []},
            "__doc__": f"Generated {workload}-intensive class #{index}.",
        }
        cls = type(name, (), namespace)
        annotate = untrusted if index < n_untrusted else trusted
        classes.append(annotate(cls))
    return GeneratedApp(
        classes=tuple(classes), workload=workload, pct_untrusted=pct_untrusted
    )
