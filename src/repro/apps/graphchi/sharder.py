"""FastSharder: phase 1 of the GraphChi workflow (Fig. 8).

Splits the edge list into ``P`` shards: shard ``i`` holds every edge
whose destination falls into vertex interval ``i``, sorted by source —
GraphChi's parallel-sliding-windows invariant. Shards are real binary
files written through the shim libc, so a trusted sharder would pay an
ocall per buffered write (the reason the paper keeps it untrusted).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.annotations import ambient_context, untrusted
from repro.core.shim import ShimLibc
from repro.errors import GraphError

#: Bytes per on-disk edge: (src u32, dst u32).
EDGE_BYTES = 8

#: The sharder appends each edge to its bucket file individually — the
#: "expensive I/O related work" §6.5 moves out of the enclave.
_EDGE_WRITE_CHUNK = EDGE_BYTES
#: Bulk writes (degree file) use a normal buffer.
_BULK_WRITE_CHUNK = 4 * 1024

#: Sort cost per edge per log-factor, plus per-edge bucketing.
_SORT_CYCLES_PER_EDGE = 400.0
_BUCKET_CYCLES_PER_EDGE = 180.0
#: Memory traffic per edge during bucket+sort (multiple passes).
_SORT_MEM_BYTES_PER_EDGE = 120.0


@dataclass(frozen=True)
class ShardInfo:
    """One shard: its file and the destination interval it covers."""

    path: str
    interval_start: int
    interval_end: int  # exclusive
    n_edges: int


@dataclass(frozen=True)
class ShardedGraph:
    """Phase-1 output handed to the engine (picklable: crosses the RMI)."""

    n_vertices: int
    n_edges: int
    shards: Tuple[ShardInfo, ...]
    degree_path: str

    @property
    def n_shards(self) -> int:
        return len(self.shards)


class SharderLogic:
    """Shared sharding implementation (annotated leaf below)."""

    def __init__(self, workdir: str) -> None:
        self.workdir = workdir

    def shard(
        self,
        sources: Sequence[int],
        destinations: Sequence[int],
        n_vertices: int,
        n_shards: int,
    ) -> ShardedGraph:
        """Split the edge list into ``n_shards`` source-sorted shards."""
        if n_shards <= 0:
            raise GraphError("need at least one shard")
        if n_vertices <= 0:
            raise GraphError("graph must have vertices")
        ctx = ambient_context()
        libc = ShimLibc(ctx)
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(destinations, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("source/destination arrays differ in length")
        if len(src) and (src.max() >= n_vertices or dst.max() >= n_vertices):
            raise GraphError("vertex id out of range")
        n_edges = len(src)
        os.makedirs(self.workdir, exist_ok=True)

        # Out-degrees, needed by PageRank; persisted like GraphChi does.
        degrees = np.bincount(src, minlength=n_vertices).astype(np.uint32)
        degree_path = os.path.join(self.workdir, "degrees.bin")
        ctx.compute(n_edges * 2.0, mem_bytes=n_edges * 8)
        with libc.fopen(degree_path, "wb") as handle:
            blob = degrees.tobytes()
            for start in range(0, len(blob), _BULK_WRITE_CHUNK):
                handle.write(blob[start : start + _BULK_WRITE_CHUNK])

        interval_size = -(-n_vertices // n_shards)  # ceiling division
        shards: List[ShardInfo] = []
        log_edges = max(1.0, np.log2(max(2, n_edges)))
        for index in range(n_shards):
            low = index * interval_size
            high = min(n_vertices, low + interval_size)
            mask = (dst >= low) & (dst < high)
            shard_src = src[mask]
            shard_dst = dst[mask]
            order = np.argsort(shard_src, kind="stable")
            shard_src = shard_src[order]
            shard_dst = shard_dst[order]
            ctx.compute(
                len(shard_src) * (_SORT_CYCLES_PER_EDGE * log_edges)
                + n_edges * _BUCKET_CYCLES_PER_EDGE / n_shards,
                mem_bytes=len(shard_src) * _SORT_MEM_BYTES_PER_EDGE,
            )
            path = os.path.join(self.workdir, f"shard_{index}.bin")
            blob = _pack_edges(shard_src, shard_dst)
            with libc.fopen(path, "wb") as handle:
                for start in range(0, len(blob), _EDGE_WRITE_CHUNK):
                    handle.write(blob[start : start + _EDGE_WRITE_CHUNK])
            shards.append(
                ShardInfo(
                    path=path,
                    interval_start=low,
                    interval_end=high,
                    n_edges=len(shard_src),
                )
            )
        return ShardedGraph(
            n_vertices=n_vertices,
            n_edges=n_edges,
            shards=tuple(shards),
            degree_path=degree_path,
        )


@untrusted
class FastSharder(SharderLogic):
    """The paper's untrusted sharder: I/O-heavy, stays outside."""


def _pack_edges(src: np.ndarray, dst: np.ndarray) -> bytes:
    packed = np.empty(len(src) * 2, dtype=np.uint32)
    packed[0::2] = src.astype(np.uint32)
    packed[1::2] = dst.astype(np.uint32)
    return packed.tobytes()


def unpack_edges(blob: bytes) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of the shard on-disk packing."""
    if len(blob) % EDGE_BYTES:
        raise GraphError("corrupt shard: not a whole number of edges")
    flat = np.frombuffer(blob, dtype=np.uint32)
    return flat[0::2].astype(np.int64), flat[1::2].astype(np.int64)
