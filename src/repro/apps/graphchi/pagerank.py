"""PageRank vertex program and an in-memory reference implementation.

GraphChi-style PageRank: each iteration computes

    rank'[v] = 0.15 + 0.85 * (sum over in-edges of rank[u]/deg(u)
                              + dangling_mass / n)

which, scaled by 1/n, is exactly the classic normalised PageRank with
uniform dangling redistribution — tests verify against
``networkx.pagerank``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError

DAMPING = 0.85
BASE = 1.0 - DAMPING


def pagerank_step(
    ranks: np.ndarray,
    degrees: np.ndarray,
    sources: np.ndarray,
    destinations: np.ndarray,
    interval: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """One PageRank contribution pass over an edge set.

    Returns the *accumulated in-flow* for each vertex (before damping);
    when ``interval`` is given, only edges into [start, end) contribute
    (the per-shard case) and the returned array covers that interval.
    """
    n = len(ranks)
    contributions = np.zeros(
        n if interval is None else interval[1] - interval[0], dtype=np.float64
    )
    if len(sources) == 0:
        return contributions
    out = np.where(degrees[sources] > 0, degrees[sources], 1)
    weights = ranks[sources] / out
    dst = destinations if interval is None else destinations - interval[0]
    np.add.at(contributions, dst, weights)
    return contributions


def run_pagerank_in_memory(
    sources: np.ndarray,
    destinations: np.ndarray,
    n_vertices: int,
    iterations: int = 10,
) -> np.ndarray:
    """Reference PageRank over an in-memory edge list (scale: rank sums
    to ~n_vertices)."""
    if n_vertices <= 0:
        raise GraphError("graph must have vertices")
    degrees = np.bincount(
        np.asarray(sources, dtype=np.int64), minlength=n_vertices
    ).astype(np.int64)
    ranks = np.ones(n_vertices, dtype=np.float64)
    for _ in range(iterations):
        inflow = pagerank_step(ranks, degrees, sources, destinations)
        dangling = ranks[degrees == 0].sum()
        ranks = BASE + DAMPING * (inflow + dangling / n_vertices)
    return ranks


def pagerank_reference(
    sources: np.ndarray, destinations: np.ndarray, n_vertices: int, iterations: int = 50
) -> np.ndarray:
    """Normalised (sums to 1) reference, comparable to networkx."""
    ranks = run_pagerank_in_memory(sources, destinations, n_vertices, iterations)
    return ranks / ranks.sum()
