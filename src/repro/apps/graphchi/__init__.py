"""GraphChi-like out-of-core graph engine (§6.5).

Follows the paper's Fig. 8 workflow: a :class:`FastSharder` splits the
input graph into per-interval shards on disk, and the
:class:`GraphChiEngine` processes the shards to produce the result
(PageRank values here). The paper partitions along exactly these two
classes: the I/O-heavy sharder stays untrusted, the engine is trusted.
"""

from repro.apps.graphchi.engine import EngineLogic, GraphChiEngine
from repro.apps.graphchi.pagerank import pagerank_reference, run_pagerank_in_memory
from repro.apps.graphchi.sharder import (
    FastSharder,
    ShardedGraph,
    SharderLogic,
    ShardInfo,
)

#: Class set for the paper's partitioning scheme (engine in, sharder out).
GRAPHCHI_CLASSES = (GraphChiEngine, FastSharder)

__all__ = [
    "EngineLogic",
    "GraphChiEngine",
    "pagerank_reference",
    "run_pagerank_in_memory",
    "FastSharder",
    "ShardedGraph",
    "SharderLogic",
    "ShardInfo",
    "GRAPHCHI_CLASSES",
]
