"""GraphChiEngine: phase 2 of the GraphChi workflow (Fig. 8).

Processes shards interval by interval, out-of-core: each iteration
re-reads every shard from disk, computes the PageRank in-flow for the
shard's destination interval, and combines the intervals into the next
rank vector. As the paper's trusted class, all of this — the compute
and the shard reads — executes inside the enclave when partitioned.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.graphchi.pagerank import BASE, DAMPING, pagerank_step
from repro.apps.graphchi.sharder import EDGE_BYTES, ShardedGraph, unpack_edges
from repro.core.annotations import ambient_context, trusted
from repro.core.shim import ShimLibc
from repro.errors import GraphError

#: Engine read-chunk size (GraphChi streams shards in blocks).
_READ_CHUNK = 64 * 1024

#: Vertex-update cost per edge (gather + scatter through the managed
#: out-of-core engine; calibrated against GraphChi's Java throughput).
_EDGE_CPU_CYCLES = 8_500.0
#: Memory traffic per edge processed (rank reads + writes, random).
_EDGE_MEM_BYTES = 48.0


class EngineLogic:
    """Shared engine implementation (annotated leaf below)."""

    def run_pagerank(self, graph: ShardedGraph, iterations: int = 5) -> List[float]:
        """Run PageRank over a sharded graph; returns the rank vector."""
        if iterations <= 0:
            raise GraphError("iterations must be positive")
        ctx = ambient_context()
        libc = ShimLibc(ctx)
        degrees = self._load_degrees(libc, graph)
        ranks = np.ones(graph.n_vertices, dtype=np.float64)
        ws_bytes = graph.n_vertices * 12 + graph.n_edges * EDGE_BYTES

        for _ in range(iterations):
            next_ranks = np.empty_like(ranks)
            dangling = ranks[degrees == 0].sum()
            for shard in graph.shards:
                sources, destinations = unpack_edges(
                    self._read_file(libc, shard.path)
                )
                ctx.compute(
                    shard.n_edges * _EDGE_CPU_CYCLES,
                    mem_bytes=shard.n_edges * _EDGE_MEM_BYTES,
                    ws_bytes=ws_bytes,
                )
                inflow = pagerank_step(
                    ranks,
                    degrees,
                    sources,
                    destinations,
                    interval=(shard.interval_start, shard.interval_end),
                )
                next_ranks[shard.interval_start : shard.interval_end] = (
                    BASE + DAMPING * (inflow + dangling / graph.n_vertices)
                )
            ranks = next_ranks
        return [float(r) for r in ranks]

    # -- I/O helpers ----------------------------------------------------------

    def _load_degrees(self, libc: ShimLibc, graph: ShardedGraph) -> np.ndarray:
        blob = self._read_file(libc, graph.degree_path)
        degrees = np.frombuffer(blob, dtype=np.uint32).astype(np.int64)
        if len(degrees) != graph.n_vertices:
            raise GraphError(
                f"degree file holds {len(degrees)} entries for "
                f"{graph.n_vertices} vertices"
            )
        return degrees

    def _read_file(self, libc: ShimLibc, path: str) -> bytes:
        chunks = []
        with libc.fopen(path, "rb") as handle:
            while True:
                chunk = handle.read(_READ_CHUNK)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)


@trusted
class GraphChiEngine(EngineLogic):
    """The paper's trusted engine: computations stay in the enclave."""
