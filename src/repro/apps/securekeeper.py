"""SecureKeeper-style coordination service (related work [9], §3, §6.7).

SecureKeeper extends ZooKeeper so confidential user data stays inside
enclaves while the ZooKeeper framework itself runs outside. The same
split expressed in Montsalvat's partitioning language:

- :class:`PayloadVault` (**@trusted**) — authenticated encryption of
  znode payloads with an in-enclave key; plaintext never leaves;
- :class:`ZNodeStore` (**@untrusted**) — the coordination tree:
  hierarchical znodes, versioned compare-and-set, children listing and
  watches. It only ever sees ciphertext.

:class:`SecureKeeperClient` (neutral) composes the two, giving the §6.7
"secure key/value store" use case a full coordination-service shape.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.batching import batchable
from repro.core.annotations import ambient_context, trusted, untrusted
from repro.errors import ReproError


class KeeperError(ReproError):
    """Coordination-service failure (bad path, version conflict...)."""


#: AES-GCM-class cost per payload byte inside the vault.
_CRYPT_BYTE_CYCLES = 2.2
_CRYPT_FIXED_CYCLES = 2_400.0

#: Appending one record to the in-enclave audit log.
_AUDIT_RECORD_CYCLES = 650.0

#: Tree-operation costs charged by the store.
_TREE_OP_CYCLES = 900.0
_TREE_OP_MEM_BYTES = 192.0
#: Every client operation arrives and answers over the network, and
#: every mutation appends to the transaction log — ZooKeeper's actual
#: per-request work, which becomes ocalls inside an enclave.
_NET_PAYLOAD_BYTES = 256.0
_LOG_RECORD_BYTES = 320.0


def validate_path(path: str) -> Tuple[str, ...]:
    """ZooKeeper path rules: absolute, no empty or dot segments."""
    if not path.startswith("/"):
        raise KeeperError(f"path must be absolute: {path!r}")
    if path != "/" and path.endswith("/"):
        raise KeeperError(f"path must not end with '/': {path!r}")
    segments = tuple(s for s in path.split("/") if s)
    for segment in segments:
        if segment in (".", ".."):
            raise KeeperError(f"relative segment in path: {path!r}")
    return segments


@trusted
class PayloadVault:
    """In-enclave payload protection: the SecureKeeper enclave logic."""

    def __init__(self, master_secret: str) -> None:
        self._key = hashlib.sha256(master_secret.encode("utf-8")).digest()
        self._counter = 0
        self._audit: List[str] = []

    @batchable
    def record_access(self, path: str) -> None:
        """Append one entry to the in-enclave audit trail.

        SecureKeeper logs every znode access inside the enclave so the
        untrusted framework cannot censor the trail. Fire-and-forget
        and extremely chatty — one ecall per store operation — which
        makes it the coalescer's canonical target.
        """
        ctx = ambient_context()
        ctx.compute(_AUDIT_RECORD_CYCLES, mem_bytes=len(path) + 24)
        self._audit.append(path)

    def audit_count(self) -> int:
        """Entries recorded so far (drains any open audit batch)."""
        return len(self._audit)

    def encrypt(self, plaintext: str) -> bytes:
        """Encrypt+authenticate one payload; returns the wire blob."""
        ctx = ambient_context()
        data = plaintext.encode("utf-8")
        ctx.compute(_CRYPT_FIXED_CYCLES + len(data) * _CRYPT_BYTE_CYCLES)
        self._counter += 1
        nonce = self._counter.to_bytes(12, "big")
        stream = self._keystream(nonce, len(data))
        ciphertext = bytes(a ^ b for a, b in zip(data, stream))
        tag = hmac.new(self._key, nonce + ciphertext, hashlib.sha256).digest()[:16]
        return nonce + tag + ciphertext

    def decrypt(self, blob: bytes) -> str:
        """Verify and decrypt; rejects tampering."""
        ctx = ambient_context()
        if len(blob) < 28:
            raise KeeperError("ciphertext too short")
        nonce, tag, ciphertext = blob[:12], blob[12:28], blob[28:]
        ctx.compute(_CRYPT_FIXED_CYCLES + len(ciphertext) * _CRYPT_BYTE_CYCLES)
        expected = hmac.new(
            self._key, nonce + ciphertext, hashlib.sha256
        ).digest()[:16]
        if not hmac.compare_digest(expected, tag):
            raise KeeperError("payload authentication failed (tampered?)")
        stream = self._keystream(nonce, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, stream)).decode("utf-8")

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        counter = 0
        while len(blocks) * 32 < length:
            blocks.append(
                hashlib.sha256(self._key + nonce + counter.to_bytes(4, "big")).digest()
            )
            counter += 1
        return b"".join(blocks)[:length]


@dataclass
class ZNode:
    """One node of the coordination tree."""

    path: str
    data: bytes
    version: int = 0
    children: List[str] = field(default_factory=list)


@untrusted
class ZNodeStore:
    """The untrusted coordination framework (ZooKeeper's role)."""

    def __init__(self) -> None:
        self._nodes: Dict[str, ZNode] = {"/": ZNode(path="/", data=b"")}
        self._watch_events: List[Tuple[str, str]] = []
        self._watched: Dict[str, int] = {}

    # -- tree operations -------------------------------------------------------

    def create(self, path: str, data: bytes) -> str:
        self._charge(mutation=True)
        segments = validate_path(path)
        if not segments:
            raise KeeperError("cannot create the root")
        if path in self._nodes:
            raise KeeperError(f"node exists: {path}")
        parent_path = "/" + "/".join(segments[:-1]) if len(segments) > 1 else "/"
        parent = self._nodes.get(parent_path)
        if parent is None:
            raise KeeperError(f"no parent for {path}")
        self._nodes[path] = ZNode(path=path, data=data)
        parent.children.append(segments[-1])
        self._fire(parent_path, "child")
        return path

    def get(self, path: str) -> Tuple[bytes, int]:
        self._charge()
        node = self._require(path)
        return node.data, node.version

    def set(self, path: str, data: bytes, expected_version: int) -> int:
        """Compare-and-set: fails on version mismatch (optimistic CAS)."""
        self._charge(mutation=True)
        node = self._require(path)
        if node.version != expected_version:
            raise KeeperError(
                f"version conflict on {path}: have {node.version}, "
                f"caller expected {expected_version}"
            )
        node.data = data
        node.version += 1
        self._fire(path, "data")
        return node.version

    def delete(self, path: str, expected_version: int) -> None:
        self._charge(mutation=True)
        node = self._require(path)
        if node.version != expected_version:
            raise KeeperError(f"version conflict deleting {path}")
        if node.children:
            raise KeeperError(f"node {path} has children")
        segments = validate_path(path)
        parent_path = "/" + "/".join(segments[:-1]) if len(segments) > 1 else "/"
        self._nodes[parent_path].children.remove(segments[-1])
        del self._nodes[path]
        self._fire(path, "deleted")
        self._fire(parent_path, "child")

    def exists(self, path: str) -> bool:
        self._charge()
        validate_path(path)
        return path in self._nodes

    def get_children(self, path: str) -> List[str]:
        self._charge()
        return sorted(self._require(path).children)

    # -- watches -----------------------------------------------------------------

    def watch(self, path: str) -> None:
        """One-shot watch, ZooKeeper-style."""
        self._require(path)
        self._watched[path] = self._watched.get(path, 0) + 1

    def drain_events(self) -> List[Tuple[str, str]]:
        events, self._watch_events = self._watch_events, []
        return events

    # -- internals ------------------------------------------------------------------

    def _require(self, path: str) -> ZNode:
        validate_path(path)
        node = self._nodes.get(path)
        if node is None:
            raise KeeperError(f"no node {path}")
        return node

    def _fire(self, path: str, kind: str) -> None:
        pending = self._watched.get(path, 0)
        if pending:
            self._watch_events.append((path, kind))
            if pending == 1:
                del self._watched[path]
            else:
                self._watched[path] = pending - 1

    def _charge(self, mutation: bool = False) -> None:
        ctx = ambient_context()
        ctx.compute(_TREE_OP_CYCLES, mem_bytes=_TREE_OP_MEM_BYTES)
        # Request/response over the network (the ZooKeeper protocol).
        ctx.syscall(payload_bytes=_NET_PAYLOAD_BYTES, name="recv")
        ctx.syscall(payload_bytes=_NET_PAYLOAD_BYTES, name="send")
        if mutation:
            # Append to the transaction log before acknowledging.
            ctx.syscall(payload_bytes=_LOG_RECORD_BYTES, name="txn_log")


class SecureKeeperClient:
    """Neutral client composing the vault and the store.

    With ``audit=True`` every operation also appends to the vault's
    in-enclave audit trail — one extra (batchable) ecall per op.
    """

    def __init__(
        self, vault: PayloadVault, store: ZNodeStore, audit: bool = False
    ) -> None:
        self.vault = vault
        self.store = store
        self.audit = audit

    def put(self, path: str, plaintext: str) -> None:
        if self.audit:
            self.vault.record_access(path)
        blob = self.vault.encrypt(plaintext)
        if self.store.exists(path):
            _, version = self.store.get(path)
            self.store.set(path, blob, version)
        else:
            self.store.create(path, blob)

    def read(self, path: str) -> str:
        if self.audit:
            self.vault.record_access(path)
        blob, _ = self.store.get(path)
        return self.vault.decrypt(blob)


SECUREKEEPER_CLASSES = (PayloadVault, ZNodeStore)
