"""Applications and workloads used by the paper's evaluation.

- :mod:`repro.apps.bank` — the illustrative Account/Person example (§5);
- :mod:`repro.apps.paldb` — the PalDB-like embeddable write-once
  key-value store (§6.5);
- :mod:`repro.apps.graphchi` — the GraphChi-like out-of-core graph
  engine with PageRank (§6.5);
- :mod:`repro.apps.rmat` — the RMAT synthetic graph generator;
- :mod:`repro.apps.specjvm` — SPECjvm2008-like micro-benchmark kernels
  (§6.6);
- :mod:`repro.apps.generator` — the synthetic partitioned-program
  generator behind Fig. 6.
"""
