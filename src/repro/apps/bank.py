"""The paper's illustrative example (Listing 1): accounts and persons.

``Account`` and ``AccountRegistry`` perform sensitive operations and
are @trusted; ``Person`` is @untrusted. Under a partitioned runtime,
``Person`` objects live on the untrusted heap holding *proxies* to
in-enclave ``Account`` mirrors.
"""

from __future__ import annotations

from typing import List

from repro.batching import batchable
from repro.core.annotations import trusted, untrusted


@trusted
class Account:
    """A bank account; balance and owner never leave the enclave."""

    def __init__(self, owner: str, balance: int) -> None:
        self.owner = owner
        self.balance = balance

    @batchable
    def update_balance(self, amount: int) -> None:
        """Apply a signed amount to the balance.

        Void and fire-and-forget, so a coalescer may carry many
        updates across the boundary in one crossing; any
        ``get_balance()`` read drains the queue first.
        """
        self.balance += amount

    def get_balance(self) -> int:
        """Current balance (crosses the boundary as a primitive)."""
        return self.balance


@trusted
class AccountRegistry:
    """In-enclave registry of accounts."""

    def __init__(self) -> None:
        self.reg: List[Account] = []

    def add_account(self, account: Account) -> None:
        self.reg.append(account)

    def count(self) -> int:
        return len(self.reg)

    def total_balance(self) -> int:
        return sum(account.get_balance() for account in self.reg)


@untrusted
class Person:
    """An untrusted person holding a (proxied) trusted account."""

    def __init__(self, name: str, amount: int) -> None:
        self.name = name
        self.account = Account(name, amount)

    def get_account(self) -> Account:
        return self.account

    def transfer(self, other: "Person", amount: int) -> None:
        """Move ``amount`` from this person's account to ``other``'s."""
        other.get_account().update_balance(amount)
        self.account.update_balance(-amount)


@untrusted
class Main:
    """The application's main entry point (untrusted image, §5.3)."""

    @staticmethod
    def main() -> AccountRegistry:
        alice = Person("Alice", 100)
        bob = Person("Bob", 25)
        alice.transfer(bob, 25)
        registry = AccountRegistry()
        registry.add_account(alice.get_account())
        registry.add_account(bob.get_account())
        return registry


#: Every class of the bank application, for the partitioner.
BANK_CLASSES = (Account, AccountRegistry, Person, Main)
