"""The six SPECjvm2008 kernels and their cost footprints.

The *computation* is real (numpy/scipy, scaled down, checksummed); the
*cost* is the declared default-workload footprint charged to the
ambient context, so each kernel responds to its environment the way the
paper observes:

- compute-bound kernels (mpegaudio) pay the JVM warm-up multiplier;
- memory-bound kernels (fft, sor, lu, sparse) pay the MEE and — with
  the JVM's inflated working set — EPC paging;
- allocation-heavy kernels (monte_carlo) pay GC: the native image's
  serial collector is far costlier per allocated byte than HotSpot's
  generational collectors, which is exactly why Table 1 reports
  SCONE+JVM *beating* the native image on Monte_Carlo (0.25x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.annotations import ambient_context
from repro.errors import ConfigurationError
from repro.runtime.context import ExecutionContext, RuntimeKind

MB = 1024 * 1024
GCYC = 1e9


#: Bump-pointer cost per allocated byte (zeroing is part of mem_bytes).
_BUMP_ALLOC_BYTE_CYCLES = 0.05


@dataclass(frozen=True)
class KernelFootprint:
    """Default-workload resource footprint of one kernel.

    ``jvm_cpu_multiplier`` overrides the model's average warm-up factor
    for kernels whose interpretation/JIT profile deviates from it
    (mpegaudio is far more interpretation-bound than the numeric
    stencils, which JIT to tight loops almost immediately).
    """

    cpu_cycles: float
    mem_bytes: float
    ws_bytes: float
    alloc_bytes: float
    jvm_cpu_multiplier: float = 1.55

    def charge(self, ctx: ExecutionContext) -> float:
        cycles = self.cpu_cycles
        if ctx.runtime is RuntimeKind.JVM:
            cycles *= self.jvm_cpu_multiplier
        ns = ctx.platform.charge_cycles(
            f"compute.{ctx.location.value}.{ctx.label}", cycles
        )
        ns += ctx.memory_traffic(self.mem_bytes, ws_bytes=self.ws_bytes)
        if self.alloc_bytes:
            ns += ctx.platform.charge_cycles(
                f"alloc.{ctx.location.value}.{ctx.label}",
                self.alloc_bytes * _BUMP_ALLOC_BYTE_CYCLES,
            )
            ns += charge_allocation_gc(ctx, self.alloc_bytes)
        return ns


def charge_allocation_gc(ctx: ExecutionContext, alloc_bytes: float) -> float:
    """GC cost of churning ``alloc_bytes``, runtime-dependent.

    Native images embed a serial stop-and-copy collector; HotSpot's
    generational collectors reclaim short-lived garbage far cheaper
    per byte (§6.6, [28]).
    """
    if alloc_bytes < 0:
        raise ConfigurationError("negative allocation")
    gc_costs = ctx.platform.cost_model.gc
    if ctx.runtime is RuntimeKind.JVM:
        rate = gc_costs.jvm_alloc_gc_byte_cycles
    else:
        rate = gc_costs.ni_alloc_gc_byte_cycles
    cycles = alloc_bytes * rate
    if ctx.in_enclave:
        # GC copy traffic streams through the MEE; only a fraction of
        # churned bytes survive to be copied.
        cycles *= 2.2
    return ctx.platform.charge_cycles(
        f"gc.alloc.{ctx.location.value}.{ctx.label}", cycles
    )


@dataclass(frozen=True)
class Kernel:
    """One SPECjvm2008 micro-benchmark."""

    name: str
    footprint: KernelFootprint
    compute: Callable[[], float]

    def run(self, ctx: ExecutionContext = None) -> float:
        """Run the kernel; returns its checksum. Charges the footprint."""
        ctx = ctx or ambient_context()
        self.footprint.charge(ctx)
        return self.compute()


# -- real computations (small, deterministic) -------------------------------


def _mpegaudio() -> float:
    """Polyphase filterbank over synthetic PCM (the decoder's core)."""
    rng = np.random.RandomState(1)
    pcm = rng.standard_normal(8192)
    window = np.hanning(128)
    bands = np.array(
        [np.convolve(pcm[i::32], window[i % len(window)] * np.ones(4), "same").sum()
         for i in range(32)]
    )
    return float(np.abs(bands).sum())


def _fft() -> float:
    rng = np.random.RandomState(2)
    signal = rng.standard_normal(1 << 14) + 1j * rng.standard_normal(1 << 14)
    spectrum = np.fft.fft(signal)
    round_trip = np.fft.ifft(spectrum)
    return float(np.abs(round_trip - signal).max())


def _monte_carlo() -> float:
    rng = np.random.RandomState(3)
    points = rng.random_sample((20_000, 2))
    inside = (points**2).sum(axis=1) <= 1.0
    return float(4.0 * inside.mean())


def _sor() -> float:
    grid = np.zeros((66, 66))
    grid[0, :] = 1.0
    omega = 1.25
    for _ in range(60):
        grid[1:-1, 1:-1] = (1 - omega) * grid[1:-1, 1:-1] + omega * 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
    return float(grid.sum())


def _lu() -> float:
    import scipy.linalg

    rng = np.random.RandomState(4)
    matrix = rng.standard_normal((96, 96)) + 96 * np.eye(96)
    permutation, lower, upper = scipy.linalg.lu(matrix)
    residual = np.abs(permutation @ lower @ upper - matrix).max()
    return float(np.trace(np.abs(upper)) + residual)


def _sparse() -> float:
    import scipy.sparse

    rng = np.random.RandomState(5)
    matrix = scipy.sparse.random(2000, 2000, density=0.004, random_state=rng, format="csr")
    vector = rng.standard_normal(2000)
    result = vector
    for _ in range(10):
        result = matrix @ result
    return float(np.abs(result).sum())


#: Footprints calibrated against Fig. 12 / Table 1 (see EXPERIMENTS.md).
KERNELS: Dict[str, Kernel] = {
    "mpegaudio": Kernel(
        "mpegaudio",
        KernelFootprint(
            cpu_cycles=7.0 * GCYC, mem_bytes=0.5e9, ws_bytes=24 * MB,
            alloc_bytes=0.2e9, jvm_cpu_multiplier=2.2,
        ),
        _mpegaudio,
    ),
    "fft": Kernel(
        "fft",
        KernelFootprint(
            cpu_cycles=3.2 * GCYC, mem_bytes=2.6e9, ws_bytes=46 * MB,
            alloc_bytes=0.3e9, jvm_cpu_multiplier=1.55,
        ),
        _fft,
    ),
    "monte_carlo": Kernel(
        "monte_carlo",
        KernelFootprint(
            cpu_cycles=2.0 * GCYC, mem_bytes=0.2e9, ws_bytes=12 * MB,
            alloc_bytes=9.0e9, jvm_cpu_multiplier=1.55,
        ),
        _monte_carlo,
    ),
    "sor": Kernel(
        "sor",
        KernelFootprint(
            cpu_cycles=2.8 * GCYC, mem_bytes=3.4e9, ws_bytes=34 * MB,
            alloc_bytes=0.1e9, jvm_cpu_multiplier=1.35,
        ),
        _sor,
    ),
    "lu": Kernel(
        "lu",
        KernelFootprint(
            cpu_cycles=3.0 * GCYC, mem_bytes=3.4e9, ws_bytes=34 * MB,
            alloc_bytes=0.2e9, jvm_cpu_multiplier=1.35,
        ),
        _lu,
    ),
    "sparse": Kernel(
        "sparse",
        KernelFootprint(
            cpu_cycles=2.4 * GCYC, mem_bytes=3.6e9, ws_bytes=34 * MB,
            alloc_bytes=0.2e9, jvm_cpu_multiplier=1.2,
        ),
        _sparse,
    ),
}

#: Table 1 row order.
KERNEL_ORDER: Tuple[str, ...] = ("mpegaudio", "fft", "monte_carlo", "sor", "lu", "sparse")


def run_kernel(name: str) -> float:
    """Run a kernel by name in the ambient context."""
    try:
        kernel = KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {name!r}; choose from {sorted(KERNELS)}"
        ) from None
    return kernel.run()
