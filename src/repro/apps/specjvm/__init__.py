"""SPECjvm2008-like micro-benchmark kernels (§6.6, Fig. 12, Table 1).

Six kernels matching the paper's selection: mpegaudio, fft,
monte_carlo, sor, lu and sparse. Each kernel performs a real (small)
computation for a verifiable checksum and charges its calibrated
default-workload footprint to the ambient execution context.
"""

from repro.apps.specjvm.kernels import (
    KERNELS,
    Kernel,
    KernelFootprint,
    charge_allocation_gc,
    run_kernel,
)

__all__ = [
    "KERNELS",
    "Kernel",
    "KernelFootprint",
    "charge_allocation_gc",
    "run_kernel",
]
