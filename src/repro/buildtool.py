"""Montsalvat build tool: the Fig. 1 workflow as a command.

Points at a Python module containing annotated classes, runs the full
partitioning pipeline, and writes the build artifacts to an output
directory:

- the generated EDL file and C transition routines;
- the Edger8r bridge sources;
- ``Enclave.config.xml`` (heap/stack/TCS launch parameters);
- ``manifest.json`` — images, entry points, measurements, sizes;
- ``tcb_report.txt`` — what ends up inside the enclave.

Usage::

    python -m repro.buildtool repro.apps.bank -o build/ --main Main.main
    python -m repro.buildtool mymodule --classes Account,Person -o build/
    python -m repro.buildtool mymodule -o build/ --validate-encapsulation
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.core.annotations import trust_of
from repro.core.partitioner import Partitioner, PartitionOptions
from repro.core.tcb import partitioned_tcb
from repro.core.validation import EncapsulationValidator
from repro.errors import PartitionError, ReproError
from repro.graal.jtypes import TrustLevel
from repro.sgx.config_xml import render_config_xml


def collect_classes(module_name: str, class_names: Optional[Sequence[str]]) -> List[type]:
    """Import a module and pick up its application classes.

    Without an explicit list, every class defined in the module that
    carries a trust annotation is selected, plus every unannotated
    class defined there (neutral classes still matter to the build).
    """
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise PartitionError(f"cannot import module {module_name!r}: {exc}") from exc
    if class_names:
        classes = []
        for name in class_names:
            cls = getattr(module, name, None)
            if not isinstance(cls, type):
                raise PartitionError(
                    f"module {module_name!r} has no class {name!r}"
                )
            classes.append(cls)
        return classes
    classes = [
        member
        for member in vars(module).values()
        if isinstance(member, type) and member.__module__ == module.__name__
    ]
    if not classes:
        raise PartitionError(f"module {module_name!r} defines no classes")
    return classes


def build(
    module_name: str,
    output_dir: str,
    class_names: Optional[Sequence[str]] = None,
    main: Optional[str] = None,
    app_name: Optional[str] = None,
    validate_encapsulation: bool = False,
) -> dict:
    """Run the pipeline and write artifacts; returns the manifest."""
    classes = collect_classes(module_name, class_names)
    if validate_encapsulation:
        violations = EncapsulationValidator().validate(classes)
        for violation in violations:
            print(f"warning: {violation.describe()}", file=sys.stderr)

    options = PartitionOptions(name=app_name or module_name.rsplit(".", 1)[-1])
    app = Partitioner(options).partition(classes, main=main)

    os.makedirs(output_dir, exist_ok=True)
    for filename in app.artifacts.names():
        with open(os.path.join(output_dir, filename), "w") as handle:
            handle.write(app.artifacts[filename])
    with open(os.path.join(output_dir, "Enclave.config.xml"), "w") as handle:
        handle.write(render_config_xml(options.enclave_config))
    with open(os.path.join(output_dir, "tcb_report.txt"), "w") as handle:
        handle.write(partitioned_tcb(app).format() + "\n")

    manifest = {
        "application": options.name,
        "module": module_name,
        "classes": {
            cls.__name__: trust_of(cls).value for cls in classes
        },
        "images": {
            "trusted": {
                "artifact": app.images.trusted.artifact_name,
                "code_bytes": app.images.trusted.code_size_bytes,
                "measurement": app.images.trusted.measure(),
                "entry_points": list(app.images.trusted.entry_points),
                "reachable_methods": len(app.images.trusted.reachable.methods),
            },
            "untrusted": {
                "artifact": app.images.untrusted.artifact_name,
                "code_bytes": app.images.untrusted.code_size_bytes,
                "measurement": app.images.untrusted.measure(),
                "entry_points": list(app.images.untrusted.entry_points),
                "reachable_methods": len(app.images.untrusted.reachable.methods),
            },
        },
        "enclave_code_bytes": len(app.enclave_code),
        "generated_files": list(app.artifacts.names())
        + ["Enclave.config.xml", "tcb_report.txt", "manifest.json"],
    }
    with open(os.path.join(output_dir, "manifest.json"), "w") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.buildtool",
        description="Partition an annotated module into SGX build artifacts",
    )
    parser.add_argument("module", help="importable module with annotated classes")
    parser.add_argument("-o", "--output", required=True, help="output directory")
    parser.add_argument(
        "--classes", help="comma-separated class names (default: all in module)"
    )
    parser.add_argument("--main", help="untrusted 'Class.method' entry point")
    parser.add_argument("--name", help="application name (default: module name)")
    parser.add_argument(
        "--validate-encapsulation",
        action="store_true",
        help="warn about foreign field accesses on annotated classes (§5.1)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    class_names = args.classes.split(",") if args.classes else None
    try:
        manifest = build(
            args.module,
            args.output,
            class_names=class_names,
            main=args.main,
            app_name=args.name,
            validate_encapsulation=args.validate_encapsulation,
        )
    except ReproError as exc:
        print(f"build failed: {exc}", file=sys.stderr)
        return 1
    trusted_image = manifest["images"]["trusted"]
    print(
        f"built {manifest['application']}: "
        f"{trusted_image['artifact']} ({trusted_image['code_bytes']} bytes, "
        f"{trusted_image['reachable_methods']} methods) + "
        f"{manifest['images']['untrusted']['artifact']} -> {args.output}/"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
