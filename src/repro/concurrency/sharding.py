"""Enclave sharding: hash-routed trusted shards over multi-isolate RMI.

Montsalvat names multi-isolate proxy–mirror pairs as §7 future work;
:class:`~repro.core.multi_isolate.MultiIsolateRuntime` already supplies
the mechanism (per-isolate registries, hash-home routing). This module
turns it into an operational **shard group**:

- :class:`ShardedEnclaveGroup` spawns N trusted shards. Shard 0 *is*
  the default isolate — a one-shard group adds no isolate, charges
  nothing, and prices byte-identically to the unsharded runtime;
- objects are pinned by key: ``crc32(key) % N`` routes a key to a
  shard, and every relay targeting a pinned mirror runs with that
  shard active (counted under ``shard.<name>.crossings``);
- the machine-wide EPC budget can be split across shards through
  :meth:`~repro.sgx.driver.SgxDriver.partition_epc`, each shard
  touching a configurable working set per crossing — overcommitting
  the budget produces the paging cliff the scaling ablation plots;
- a shard can be **lost and recovered** while the others keep serving:
  its isolate is torn down (mirrors dropped, EPC pages evicted), a
  per-shard share of the enclave reload is priced, and registered
  restore hooks rebuild application state in a fresh isolate.
  :meth:`poll_faults` drives losses from the platform's seeded
  :class:`~repro.faults.FaultInjector` (rules with
  ``call_kind="shard"``), keeping chaos schedules replayable;
- membership is **elastic**: :meth:`add_shard` spawns a new isolate at
  runtime and :meth:`remove_shard` retires one (draining any open call
  batch first), re-partitioning the EPC budget on every change. With
  ``router="ring"`` keys route over a
  :class:`~repro.autoscale.ring.ConsistentHashRing`, so a membership
  change remaps only ~1/N of the keyspace — the property the
  autoscaler's live migration (:mod:`repro.autoscale`) relies on. The
  default ``crc32`` router and static membership stay byte-identical
  to the pre-elastic group.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.annotations import Side, activate_runtime
from repro.core.multi_isolate import DEFAULT_ISOLATE, MultiIsolateRuntime
from repro.errors import ConfigurationError
from repro.sgx.driver import SgxDriver

#: Synthetic EPC tenant ids for shards. Shards share one enclave, so
#: their EPC partitions need owner ids distinct from any real enclave
#: id (small positive ints) and from the hostile-pressure tenant (-1).
_SHARD_TENANT_BASE = -10


class ShardedRuntime(MultiIsolateRuntime):
    """Multi-isolate runtime that activates a mirror's home shard per
    relay and reports each trusted crossing to its shard group."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.group: Optional["ShardedEnclaveGroup"] = None

    def relay_body(
        self,
        target: Side,
        remote_hash: int,
        method_name: str,
        encoded_args: Tuple[Any, ...],
        encoded_kwargs: Dict[str, Any],
    ):
        base = super().relay_body(
            target, remote_hash, method_name, encoded_args, encoded_kwargs
        )
        group = self.group
        if group is None or target is not Side.TRUSTED:
            return base
        shard = self._hash_home[target].get(remote_hash, DEFAULT_ISOLATE)

        def sharded_relay() -> Any:
            # Activate the mirror's home shard for the dispatch, so any
            # objects the relay creates are pinned alongside it.
            with self.in_isolate(target, shard):
                result = base()
            group.note_crossing(shard)
            return result

        return sharded_relay


class ShardedEnclaveGroup:
    """N hash-routed trusted shards behind one session."""

    def __init__(
        self,
        session: Any,
        n_shards: int,
        driver: Optional[SgxDriver] = None,
        epc_budget_pages: Optional[int] = None,
        touch_bytes: int = 0,
        working_set_bytes: int = 0,
        router: str = "crc32",
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError("a shard group needs at least one shard")
        if touch_bytes < 0 or working_set_bytes < 0:
            raise ConfigurationError("EPC byte counts cannot be negative")
        if touch_bytes and driver is None:
            raise ConfigurationError(
                "touch_bytes models EPC traffic; pass the SgxDriver that "
                "owns the page cache"
            )
        if router not in ("crc32", "ring"):
            raise ConfigurationError(
                f"router must be 'crc32' or 'ring', got {router!r}"
            )
        self.session = session
        self.platform = session.platform
        self.runtime = self._upgrade_runtime(session)
        self.runtime.group = self
        self.driver = driver
        self.touch_bytes = touch_bytes
        self.working_set_bytes = max(working_set_bytes, touch_bytes)
        self.router = router
        #: Shard 0 is the default isolate: a 1-shard group spawns
        #: nothing and stays priced identically to the plain runtime.
        self.shard_names: Tuple[str, ...] = (DEFAULT_ISOLATE,) + tuple(
            f"shard{i}" for i in range(1, n_shards)
        )
        #: Members that receive *new* routes. Retiring a shard removes
        #: it from routing first (so successors take over its keys)
        #: while the isolate stays alive for live migration.
        self._routing: Tuple[str, ...] = self.shard_names
        if router == "ring":
            from repro.autoscale.ring import ConsistentHashRing

            self._ring: Optional[ConsistentHashRing] = ConsistentHashRing(
                self.shard_names
            )
        else:
            self._ring = None
        for name in self.shard_names[1:]:
            self.runtime.spawn_isolate(Side.TRUSTED, name)
        self.crossings: Dict[str, int] = {name: 0 for name in self.shard_names}
        self.losses = 0
        self.restored_objects = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self._restore_hooks: Dict[str, List[Callable[[], Any]]] = {
            name: [] for name in self.shard_names
        }
        self._tenant_ids = {
            name: _SHARD_TENANT_BASE - index
            for index, name in enumerate(self.shard_names)
        }
        self._next_tenant = _SHARD_TENANT_BASE - len(self.shard_names)
        self._ws_cursor = {name: 0 for name in self.shard_names}
        self._epc_budget_pages = epc_budget_pages
        if epc_budget_pages is not None:
            if driver is None:
                raise ConfigurationError(
                    "an EPC budget needs the SgxDriver that owns the cache"
                )
            self._repartition_epc()
        #: Enclave image size, for the per-shard reload share priced on
        #: every shard recovery.
        self._load_bytes = len(session.enclave.contents.code_bytes)

    @property
    def _reload_cycles(self) -> float:
        """Per-shard share of a full enclave reload (EADD+EEXTEND over
        1/N of the image) at the *current* membership."""
        return (self._load_bytes * 1.2 + 500_000.0) / self.n_shards

    @staticmethod
    def _upgrade_runtime(session: Any) -> ShardedRuntime:
        base = session.runtime
        if isinstance(base, ShardedRuntime):
            return base
        runtime = ShardedRuntime(
            untrusted=base.state_of(Side.UNTRUSTED),
            trusted=base.state_of(Side.TRUSTED),
            transitions=base.transitions,
            codec=base.codec,
            hash_strategy=base.hash_strategy,
        )
        runtime.current_side = base.current_side
        runtime.recovery = base.recovery
        runtime.batcher = base.batcher
        runtime.arena = base.arena
        session.runtime = runtime
        for helper in session.gc_helpers.values():
            helper.runtime = runtime
        activate_runtime(runtime)
        return runtime

    # -- routing --------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shard_names)

    def shard_for(self, key: Any) -> str:
        """Stable hash routing: the shard owning ``key``."""
        if self._ring is not None:
            return self._ring.node_for(str(key))
        digest = zlib.crc32(str(key).encode("utf-8"))
        return self._routing[digest % len(self._routing)]

    @contextmanager
    def pinned(self, shard: str):
        """Run a block with ``shard`` as the active trusted isolate."""
        with self.runtime.in_isolate(Side.TRUSTED, shard) as state:
            yield state

    def create_pinned(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Construct an annotated object pinned to ``key``'s shard."""
        with self.pinned(self.shard_for(key)):
            return factory()

    # -- elastic membership ----------------------------------------------------

    def add_shard(self, name: Optional[str] = None) -> str:
        """Spawn one new shard at runtime; returns its name.

        The isolate is live and routable immediately; the EPC budget
        (when partitioned) is re-split over the new membership. State
        placement is the caller's concern — the autoscaler's
        :class:`~repro.autoscale.migration.ShardMigrator` attests the
        new shard and live-migrates the remapped keys onto it.
        """
        if name is None:
            taken = set(self.shard_names)
            index = 1
            while f"shard{index}" in taken:
                index += 1
            name = f"shard{index}"
        elif name in self.shard_names:
            raise ConfigurationError(f"shard {name!r} already exists")
        self.runtime.spawn_isolate(Side.TRUSTED, name)
        self.shard_names = self.shard_names + (name,)
        self._routing = self._routing + (name,)
        if self._ring is not None:
            self._ring.add(name)
        self.crossings.setdefault(name, 0)
        self._restore_hooks[name] = []
        self._tenant_ids[name] = self._next_tenant
        self._next_tenant -= 1
        self._ws_cursor[name] = 0
        self._repartition_epc()
        self.scale_ups += 1
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("shard.scale_ups").inc()
            obs.metrics.gauge("shard.count").set(self.n_shards)
        return name

    def begin_retire(self, name: str) -> None:
        """Stop routing *new* keys to ``name``; the isolate stays live.

        Two-phase scale-down: after this, :meth:`shard_for` maps every
        key to a successor, so the migrator can drain the retiring
        shard's state toward where the keys now route, then call
        :meth:`remove_shard` to finalise.
        """
        if name == DEFAULT_ISOLATE:
            raise ConfigurationError("the root isolate cannot be retired")
        if name not in self._routing:
            raise ConfigurationError(f"shard {name!r} is not routable")
        if len(self._routing) < 2:
            raise ConfigurationError("cannot retire the last routable shard")
        self._routing = tuple(n for n in self._routing if n != name)
        if self._ring is not None:
            self._ring.remove(name)

    def abort_retire(self, name: str) -> None:
        """Roll a failed retirement back: the shard routes again."""
        if name not in self.shard_names:
            raise ConfigurationError(f"no shard named {name!r}")
        if name in self._routing:
            raise ConfigurationError(f"shard {name!r} is already routable")
        self._routing = self._routing + (name,)
        if self._ring is not None:
            self._ring.add(name)

    def remove_shard(self, name: str) -> int:
        """Tear one shard down for good; returns mirrors dropped.

        Any open call batch is drained first (its queued calls still
        target live mirrors), the shard's EPC pages and quota are
        released, and the remaining members re-split the EPC budget.
        State left on the shard dies with it — live-migrate first.
        """
        if name == DEFAULT_ISOLATE:
            raise ConfigurationError("the root isolate cannot be removed")
        if name not in self.shard_names:
            raise ConfigurationError(f"no shard named {name!r}")
        if name in self._routing:
            self.begin_retire(name)
        self._drain_batches("scale-down")
        dropped = self.runtime.tear_down_isolate(Side.TRUSTED, name)
        tenant = self._tenant_ids.pop(name)
        if self.driver is not None:
            self.driver.epc.evict_enclave(tenant)
            self.driver.epc.set_quota(tenant, None)
        self.shard_names = tuple(n for n in self.shard_names if n != name)
        self._restore_hooks.pop(name, None)
        self._ws_cursor.pop(name, None)
        self._repartition_epc()
        self.scale_downs += 1
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("shard.scale_downs").inc()
            obs.metrics.counter("shard.mirrors_dropped").inc(dropped)
            obs.metrics.gauge("shard.count").set(self.n_shards)
        return dropped

    def _repartition_epc(self) -> None:
        """Re-split the EPC budget over the current membership."""
        if self._epc_budget_pages is None or self.driver is None:
            return
        self.driver.partition_epc(
            [self._tenant_ids[name] for name in self.shard_names],
            total_pages=self._epc_budget_pages,
        )

    def _drain_batches(self, reason: str) -> None:
        """Flush any open call batch before a membership/loss event.

        A coalesced batch queued against a shard must land while its
        mirrors are still alive; flushing after teardown would dangle
        into the registry of a dead isolate.
        """
        batcher = getattr(self.runtime, "batcher", None)
        if batcher is not None and batcher.pending:
            batcher.barrier(reason)

    # -- crossing accounting (called by ShardedRuntime) -----------------------

    def note_crossing(self, shard: str) -> None:
        self.crossings[shard] = self.crossings.get(shard, 0) + 1
        if self.touch_bytes:
            # The relay walks part of the shard's working set; the
            # driver prices any page faults (the shard's EPC share).
            cursor = self._ws_cursor[shard]
            span = max(self.working_set_bytes, 1)
            self.driver.access(
                self._tenant_ids[shard], cursor % span, self.touch_bytes
            )
            self._ws_cursor[shard] = (cursor + self.touch_bytes) % span
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter(f"shard.{shard}.crossings").inc()

    # -- loss + recovery ------------------------------------------------------

    def register_restore(self, key: Any, hook: Callable[[], Any]) -> str:
        """Register a state-rebuild hook on ``key``'s shard; returns it."""
        shard = self.shard_for(key)
        self._restore_hooks[shard].append(hook)
        return shard

    def lose_shard(self, shard: str) -> Dict[str, Any]:
        """Lose one shard's isolate and recover it in place.

        Mirrors pinned to the shard are dropped (their proxies dangle —
        exactly what an EPC loss does to live references), its EPC
        pages are reclaimed, a per-shard reload is priced, and restore
        hooks rebuild state inside a fresh isolate under the same name.
        Every other shard keeps serving throughout.
        """
        if shard == DEFAULT_ISOLATE:
            raise ConfigurationError(
                "shard 0 is the root isolate of the enclave image; losing "
                "it is a whole-enclave loss (see repro.faults.recovery)"
            )
        if shard not in self.shard_names:
            raise ConfigurationError(f"no shard named {shard!r}")
        # Land any in-flight coalesced batch while the shard's mirrors
        # still exist. A mid-batch enclave crash during this drain goes
        # through the recovery coordinator like any crossing (replay or
        # typed refusal); flushing *after* teardown would instead
        # surface an inexplicable registry miss.
        self._drain_batches("shard-loss")
        arena = getattr(self.runtime, "arena", None)
        if arena is not None:
            # Whatever the lost shard's batches staged in untrusted
            # memory is meaningless now; bump the generation so any
            # borrowed view still in flight fails with StaleViewError
            # instead of reading reused bytes.
            arena.invalidate("shard-loss")
        dropped = self.runtime.tear_down_isolate(Side.TRUSTED, shard)
        if self.driver is not None:
            self.driver.epc.evict_enclave(self._tenant_ids[shard])
        self.platform.charge_cycles(f"shard.reload.{shard}", self._reload_cycles)
        self.runtime.spawn_isolate(Side.TRUSTED, shard)
        self.losses += 1
        restored = 0
        with self.pinned(shard):
            for hook in self._restore_hooks[shard]:
                hook()
                restored += 1
        self.restored_objects += restored
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("shard.losses").inc()
            obs.metrics.counter("shard.mirrors_dropped").inc(dropped)
            obs.metrics.counter("shard.objects_restored").inc(restored)
        return {"shard": shard, "mirrors_dropped": dropped, "restored": restored}

    def poll_faults(self) -> Optional[Dict[str, Any]]:
        """Consult the platform's fault injector for shard crashes.

        Fault plans target shards with rules like
        ``FaultRule(FaultKind.ENCLAVE_CRASH, call_kind="shard",
        routine="shard.shard1", at_call=3)``; consultation order (and
        hence the schedule) is deterministic.
        """
        injector = self.platform.faults
        if injector is None:
            return None
        now_ns = self.platform.clock.now_ns
        for shard in self.shard_names[1:]:
            decision = injector.transition_fault(
                "shard", f"shard.{shard}", now_ns
            )
            if decision is not None and decision.crash:
                return self.lose_shard(shard)
        return None

    # -- introspection --------------------------------------------------------

    def crossing_counts(self) -> Dict[str, int]:
        return dict(self.crossings)

    def describe(self) -> str:
        lines = [f"shard group: {self.n_shards} shard(s), losses={self.losses}"]
        for name in self.shard_names:
            lines.append(f"  {name}: crossings={self.crossings[name]}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ShardedEnclaveGroup(shards={self.n_shards}, "
            f"crossings={sum(self.crossings.values())}, losses={self.losses})"
        )
