"""Switchless worker pool contended across concurrent sessions.

The paper's switchless mode (after Tian et al.) hands calls to a worker
thread through shared memory instead of performing a hardware
transition. A real pool has finitely many workers; under concurrent
load, calls that find every worker busy must fall back to the hardware
path. This module models that contention with **virtual-time leases**:

- every worker carries a ``busy_until_ns`` timestamp in *session event
  time* (the :class:`~repro.concurrency.scheduler.SessionScheduler`
  tells the pool the running session's local clock before each step);
- a crossing grabs the first worker whose lease expired and re-leases
  it for the crossing's measured duration — priced at the cheap
  switchless rate through the existing ledger;
- if every worker is leased, the crossing degrades to a hardware
  transition (priced accordingly) and counts as a contention fallback.

Because the scheduler always advances the lowest-timestamp session,
the event times the pool sees are non-decreasing, so the lease algebra
is consistent — no rollbacks, no speculative state.

With one session the pool is never contended (each call starts after
the previous one's lease expired), so a single-session run simply gets
uniform switchless pricing; with the pool unattached the transition
layer is byte-for-byte today's code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TypeVar

from repro.costs.platform import Platform
from repro.errors import ConfigurationError
from repro.sgx.enclave import Enclave
from repro.sgx.transitions import TransitionLayer

T = TypeVar("T")

#: Worker classes, following SwitchlessConfig: trusted workers serve
#: ecalls inside the enclave, untrusted workers serve ocalls outside.
_POOL_KINDS = ("trusted", "untrusted")
_KIND_FOR_CALL = {"ecall": "trusted", "ocall": "untrusted"}


@dataclass
class WorkerPoolStats:
    """Contention accounting, per worker class."""

    served: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in _POOL_KINDS}
    )
    fallbacks: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in _POOL_KINDS}
    )

    @property
    def total_served(self) -> int:
        return sum(self.served.values())

    @property
    def total_fallbacks(self) -> int:
        return sum(self.fallbacks.values())

    def fallback_share(self) -> float:
        total = self.total_served + self.total_fallbacks
        return self.total_fallbacks / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "served": dict(self.served),
            "fallbacks": dict(self.fallbacks),
            "fallback_share": self.fallback_share(),
        }


class ContendedWorkerPool:
    """Finite switchless workers leased in session event time."""

    def __init__(self, trusted_workers: int = 2, untrusted_workers: int = 2) -> None:
        if trusted_workers < 0 or untrusted_workers < 0:
            raise ConfigurationError("worker counts cannot be negative")
        self._busy_until: Dict[str, List[float]] = {
            "trusted": [0.0] * trusted_workers,
            "untrusted": [0.0] * untrusted_workers,
        }
        self.stats = WorkerPoolStats()
        self._now_ns: Optional[float] = None
        self._anchor_ns: Optional[float] = None

    # -- scheduler integration ------------------------------------------------

    def set_time(self, now_ns: float, global_ns: Optional[float] = None) -> None:
        """Install the running session's local clock (scheduler hook).

        ``global_ns`` anchors the global clock at the moment the
        session resumed: event time then advances with the global
        charges the segment makes, so back-to-back crossings within one
        segment occupy *successive* event times (a lone session never
        contends with itself) instead of piling onto one instant.
        """
        self._now_ns = now_ns
        self._anchor_ns = global_ns

    def clear_time(self) -> None:
        self._now_ns = None
        self._anchor_ns = None

    def event_time(self, platform: Platform) -> float:
        """Current event time: session-local if set, else global."""
        if self._now_ns is None:
            return platform.clock.now_ns
        if self._anchor_ns is None:
            return self._now_ns
        return self._now_ns + (platform.clock.now_ns - self._anchor_ns)

    # -- leases ---------------------------------------------------------------

    def workers(self, kind: str) -> int:
        return len(self._busy_until[kind])

    def resize(
        self,
        trusted_workers: Optional[int] = None,
        untrusted_workers: Optional[int] = None,
    ) -> None:
        """Grow or shrink a worker class at runtime (autoscaling).

        New workers start with an expired lease (free at any event
        time); shrinking drops the highest-indexed workers — an
        in-flight call on a dropped worker was already priced, so the
        lease simply disappears. Deterministic either way.
        """
        for kind, count in (
            ("trusted", trusted_workers),
            ("untrusted", untrusted_workers),
        ):
            if count is None:
                continue
            if count < 0:
                raise ConfigurationError("worker counts cannot be negative")
            leases = self._busy_until[kind]
            if count > len(leases):
                leases.extend([0.0] * (count - len(leases)))
            else:
                del leases[count:]

    def try_acquire(self, kind: str, now_ns: float) -> Optional[int]:
        """Index of a free ``kind`` worker at ``now_ns``, or None."""
        for index, busy_until in enumerate(self._busy_until[kind]):
            if busy_until <= now_ns:
                return index
        return None

    def occupy(self, kind: str, index: int, until_ns: float) -> None:
        self._busy_until[kind][index] = until_ns

    def occupancy(self, kind: str, now_ns: float) -> int:
        """Workers of ``kind`` still leased at ``now_ns``."""
        return sum(1 for until in self._busy_until[kind] if until > now_ns)

    def total_occupancy(self, now_ns: float) -> int:
        return sum(self.occupancy(kind, now_ns) for kind in _POOL_KINDS)

    def __repr__(self) -> str:
        return (
            f"ContendedWorkerPool(trusted={self.workers('trusted')}, "
            f"untrusted={self.workers('untrusted')}, "
            f"served={self.stats.total_served}, "
            f"fallbacks={self.stats.total_fallbacks})"
        )


class ContendedTransitionLayer(TransitionLayer):
    """Transition layer that prices each crossing by pool availability.

    A free worker ⇒ the crossing runs switchless (cheap); a fully
    leased pool ⇒ hardware transition + isolate attach, exactly the
    categories today's non-switchless layer charges.
    """

    def __init__(
        self, platform: Platform, enclave: Enclave, pool: ContendedWorkerPool
    ) -> None:
        super().__init__(platform, enclave, switchless=False)
        self.pool = pool

    def ecall(
        self,
        name: str,
        body: Callable[[], T],
        payload_bytes: int = 0,
        attach_isolate: bool = True,
        calls: int = 1,
        arena_bytes: int = 0,
    ) -> T:
        return self._contended(
            "ecall", super().ecall, name, body, payload_bytes, attach_isolate,
            calls, arena_bytes,
        )

    def ocall(
        self,
        name: str,
        body: Callable[[], T],
        payload_bytes: int = 0,
        attach_isolate: bool = True,
        calls: int = 1,
        arena_bytes: int = 0,
    ) -> T:
        return self._contended(
            "ocall", super().ocall, name, body, payload_bytes, attach_isolate,
            calls, arena_bytes,
        )

    def _contended(
        self,
        call_kind: str,
        base_call: Callable[..., T],
        name: str,
        body: Callable[[], T],
        payload_bytes: int,
        attach_isolate: bool,
        calls: int,
        arena_bytes: int = 0,
    ) -> T:
        pool = self.pool
        pool_kind = _KIND_FOR_CALL[call_kind]
        event_ns = pool.event_time(self.platform)
        worker = pool.try_acquire(pool_kind, event_ns)
        previous = self.switchless
        self.switchless = worker is not None
        started_global = self.platform.clock.now_ns
        try:
            return base_call(
                name,
                body,
                payload_bytes=payload_bytes,
                attach_isolate=attach_isolate,
                calls=calls,
                arena_bytes=arena_bytes,
            )
        finally:
            self.switchless = previous
            duration = self.platform.clock.now_ns - started_global
            if worker is not None:
                # The lease covers the whole crossing, nested work
                # included, anchored at the session's event time.
                pool.occupy(pool_kind, worker, event_ns + duration)
                pool.stats.served[pool_kind] += 1
            else:
                pool.stats.fallbacks[pool_kind] += 1
            obs = self.platform.obs
            if obs is not None:
                if worker is None:
                    obs.metrics.counter("concurrency.pool_fallbacks").inc()
                obs.metrics.gauge("concurrency.worker_pool.occupancy").set(
                    pool.total_occupancy(event_ns)
                )


def attach_worker_pool(session: Any, pool: ContendedWorkerPool) -> ContendedTransitionLayer:
    """Swap a session's transition layer for a pool-contended one.

    The new layer shares the old layer's stats object, so counters the
    session already exposes keep accumulating. Returns the new layer;
    :func:`detach_worker_pool` restores the original.
    """
    base = session.transitions
    layer = ContendedTransitionLayer(base.platform, base.enclave, pool)
    layer.stats = base.stats
    layer._base_layer = base
    session.transitions = layer
    session.runtime.transitions = layer
    return layer


def detach_worker_pool(session: Any) -> None:
    """Restore the transition layer :func:`attach_worker_pool` replaced."""
    layer = session.transitions
    base = getattr(layer, "_base_layer", None)
    if base is None:
        raise ConfigurationError("no worker pool is attached to this session")
    session.transitions = base
    session.runtime.transitions = base
