"""Deterministic multi-session concurrency over the virtual clock.

Three pieces compose into a concurrent runtime that still replays
byte-identically from a seed:

- :class:`SessionScheduler` — interleaves K client sessions (cooperative
  generators with per-session local timestamps), always resuming the
  lowest-timestamp session;
- :class:`ContendedWorkerPool` / :func:`attach_worker_pool` — finite
  switchless workers leased in session event time; busy workers degrade
  crossings to priced hardware transitions;
- :class:`ShardedEnclaveGroup` — N hash-routed trusted shards over the
  multi-isolate runtime, with an optionally partitioned EPC budget and
  per-shard loss + recovery.

A 1-session, 1-shard, pool-less configuration charges the ledger
byte-identically to the plain sequential runtime (asserted by tests and
the CI ``scale-smoke`` job). See ``docs/CONCURRENCY.md``.
"""

from repro.concurrency.scheduler import (
    ClientSession,
    SessionScheduler,
    StepRecord,
)
from repro.concurrency.sharding import ShardedEnclaveGroup, ShardedRuntime
from repro.concurrency.workers import (
    ContendedTransitionLayer,
    ContendedWorkerPool,
    WorkerPoolStats,
    attach_worker_pool,
    detach_worker_pool,
)

__all__ = [
    "ClientSession",
    "ContendedTransitionLayer",
    "ContendedWorkerPool",
    "SessionScheduler",
    "ShardedEnclaveGroup",
    "ShardedRuntime",
    "StepRecord",
    "WorkerPoolStats",
    "attach_worker_pool",
    "detach_worker_pool",
]
