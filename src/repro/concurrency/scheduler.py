"""Deterministic multi-session scheduling over the virtual clock.

Every experiment before this module drove *one* client through the
enclave sequentially. Real deployments serve many concurrent clients,
but real threads and a virtual clock do not mix — the platform owns a
single monotonic clock that advances with every charge. The
:class:`SessionScheduler` therefore generalises the timer-wheel idea of
:class:`~repro.runtime.scheduler.VirtualScheduler` from periodic tasks
to whole client sessions:

- each session is a cooperative **generator**; every ``yield`` marks a
  point where the client would block (think time, network gap) and
  hands control back to the scheduler;
- each session carries its own **local virtual timestamp**. Running a
  segment adds the global-clock delta it charged (its compute/crossing
  cost); yielding a number adds that much *think time* to the local
  clock only, charging nothing;
- the scheduler always resumes the session with the **lowest local
  timestamp** (seeded, deterministic tie-break), so session-local event
  times form a globally non-decreasing stream — the property the
  contended worker pool's virtual-time leases rely on.

Everything is a pure function of the generators, the seed and the cost
model: a run replays byte-identically, and :meth:`trace_digest` hashes
the full interleaving so determinism breaks loudly.

The scheduler itself never charges the platform: a one-session run is
priced byte-identically to calling the generator body inline.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.costs.platform import Platform
from repro.errors import ConfigurationError
from repro.runtime.scheduler import VirtualScheduler

#: A client session body: yields think-time ns (or None for a bare
#: cooperative break) and returns its final result.
SessionBody = Generator[Optional[float], None, Any]


@dataclass
class ClientSession:
    """One cooperative client session under the scheduler."""

    name: str
    body: SessionBody = field(repr=False)
    index: int
    tiebreak: float
    #: Session-local virtual timestamp (ns): charged work + think time.
    local_ns: float = 0.0
    busy_ns: float = 0.0
    think_ns: float = 0.0
    steps: int = 0
    done: bool = False
    result: Any = None
    error: Optional[BaseException] = None

    def sort_key(self) -> Tuple[float, float, int]:
        return (self.local_ns, self.tiebreak, self.index)


@dataclass(frozen=True)
class StepRecord:
    """One scheduler step, for the determinism trace."""

    step: int
    session: str
    start_local_ns: float
    busy_ns: float
    think_ns: float

    def to_tuple(self) -> Tuple[Any, ...]:
        return (
            self.step,
            self.session,
            self.start_local_ns,
            self.busy_ns,
            self.think_ns,
        )


class SessionScheduler:
    """Interleaves K client sessions deterministically in virtual time."""

    def __init__(
        self,
        platform: Platform,
        seed: int = 0,
        wheel: Optional[VirtualScheduler] = None,
        pool: Optional[Any] = None,
        on_error: str = "raise",
    ) -> None:
        if on_error not in ("raise", "record"):
            raise ConfigurationError("on_error must be 'raise' or 'record'")
        self.platform = platform
        self.seed = seed
        #: Optional timer wheel pumped after every step, so periodic
        #: tasks (GC helpers, checkpoints) fire between session segments.
        self.wheel = wheel
        #: Optional contended worker pool (duck-typed ``set_time`` /
        #: ``clear_time``): told each running session's local time so
        #: worker leases live in session event time, not global time.
        self.pool = pool
        self.on_error = on_error
        self._rng = random.Random(seed)
        self._sessions: List[ClientSession] = []
        #: Min-heap of (local_ns, tiebreak, index, session) over live
        #: sessions. Keys are unique (index) and only change for the
        #: session a step just ran — which is off the heap at that
        #: moment — so the heap order is exactly the old min() scan's
        #: and no lazy-deletion bookkeeping is needed. Replaces an
        #: O(K) scan per step with O(log K); the 10x traffic harness
        #: spends its time in sessions again, not in selection.
        self._heap: List[Tuple[float, float, int, ClientSession]] = []
        self._trace: List[StepRecord] = []
        self._steps = 0

    # -- registration ---------------------------------------------------------

    def spawn(self, name: str, body: SessionBody, start_ns: float = 0.0) -> ClientSession:
        """Register a session; ``start_ns`` staggers its arrival."""
        if any(s.name == name for s in self._sessions):
            raise ConfigurationError(f"duplicate session name {name!r}")
        if start_ns < 0:
            raise ConfigurationError("sessions cannot start in the past")
        session = ClientSession(
            name=name,
            body=body,
            index=len(self._sessions),
            # One draw per spawn, in spawn order: the tie-break order is
            # a pure function of the seed.
            tiebreak=self._rng.random(),
            local_ns=start_ns,
        )
        self._sessions.append(session)
        heapq.heappush(
            self._heap,
            (session.local_ns, session.tiebreak, session.index, session),
        )
        self._set_active_gauge()
        return session

    # -- execution ------------------------------------------------------------

    def step(self) -> Optional[StepRecord]:
        """Run one segment of the lowest-timestamp session."""
        if not self._heap:
            return None
        session = heapq.heappop(self._heap)[3]
        start_local = session.local_ns
        pool = self.pool
        clock = self.platform.clock
        started_global = clock.now_ns
        if pool is not None:
            pool.set_time(session.local_ns, started_global)
        think = 0.0
        try:
            yielded = next(session.body)
            if yielded is not None:
                if yielded < 0:
                    raise ConfigurationError("think time cannot be negative")
                think = float(yielded)
        except StopIteration as stop:
            session.done = True
            session.result = stop.value
            self._set_active_gauge()
        except ConfigurationError:
            raise
        except Exception as exc:  # noqa: BLE001 - policy-controlled below
            session.done = True
            session.error = exc
            self._set_active_gauge()
            if self.on_error == "raise":
                raise
        finally:
            busy = clock.now_ns - started_global
            session.local_ns += busy + think
            session.busy_ns += busy
            session.think_ns += think
            session.steps += 1
            if not session.done:
                heapq.heappush(
                    self._heap,
                    (session.local_ns, session.tiebreak, session.index, session),
                )
            if pool is not None:
                pool.clear_time()
        record = StepRecord(
            step=self._steps,
            session=session.name,
            start_local_ns=start_local,
            busy_ns=session.busy_ns,
            think_ns=session.think_ns,
        )
        self._steps += 1
        self._trace.append(record)
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("concurrency.steps").inc()
        if self.wheel is not None:
            self.wheel.pump()
        return record

    def run(self, max_steps: Optional[int] = None) -> Dict[str, Any]:
        """Drive every session to completion; returns name -> result."""
        while True:
            if max_steps is not None and self._steps >= max_steps:
                break
            if self.step() is None:
                break
        return {s.name: s.result for s in self._sessions if s.done}

    def _next_session(self) -> Optional[ClientSession]:
        """Peek at the session the next :meth:`step` would resume."""
        return self._heap[0][3] if self._heap else None

    def next_ready_ns(self) -> Optional[float]:
        """Local timestamp of the session the next :meth:`step` would
        resume (``None`` when every session is done). The open-loop
        traffic harness peeks at this to decide whether to inject the
        next arrival or advance a running session — interleaved spawns
        then replay identically to spawning everything up front."""
        session = self._next_session()
        return None if session is None else session.local_ns

    # -- introspection --------------------------------------------------------

    @property
    def sessions(self) -> Tuple[ClientSession, ...]:
        return tuple(self._sessions)

    @property
    def active_count(self) -> int:
        return sum(1 for s in self._sessions if not s.done)

    @property
    def makespan_ns(self) -> float:
        """Largest session-local timestamp: the concurrent wall clock."""
        return max((s.local_ns for s in self._sessions), default=0.0)

    @property
    def total_busy_ns(self) -> float:
        return sum(s.busy_ns for s in self._sessions)

    def errors(self) -> Dict[str, BaseException]:
        return {s.name: s.error for s in self._sessions if s.error is not None}

    def trace(self) -> Tuple[Tuple[Any, ...], ...]:
        return tuple(record.to_tuple() for record in self._trace)

    def trace_digest(self) -> str:
        """SHA-256 over the full interleaving (replay fingerprint)."""
        blob = json.dumps(self.trace(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _set_active_gauge(self) -> None:
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.gauge("concurrency.sessions_active").set(
                self.active_count
            )

    def __repr__(self) -> str:
        return (
            f"SessionScheduler(seed={self.seed}, sessions={len(self._sessions)}, "
            f"active={self.active_count}, steps={self._steps})"
        )
