"""Seeded, deterministic fault injection for the SGX substrate.

Real enclaves are *lossy*: power transitions and AEX storms surface as
``SGX_ERROR_ENCLAVE_LOST``, switchless worker pools stall, and other
tenants create EPC pressure. The :class:`FaultInjector` models all of
that as a *plan*: an ordered list of :class:`FaultRule` entries matched
against every instrumented boundary (ecall/ocall transitions, the
switchless worker pool, the EPC driver). Rules select by routine-name
pattern, call count, probability and virtual-time window; probabilistic
rules draw from one seeded :class:`random.Random`, so a plan replays
byte-identically — fault schedules are an experiment parameter, not
noise.

The injector never raises and never charges: it only *decides*. The
instrumented component turns a :class:`FaultDecision` into the right
error (:class:`~repro.errors.EnclaveLostError`), state change
(``Enclave.mark_lost``) or cost, which keeps this module free of any
SGX imports and the substrate free of fault-package imports beyond the
``platform.faults`` attribute.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """What kind of failure a rule injects."""

    #: AEX-style abort: the crossing fails with ``ENCLAVE_LOST`` but the
    #: enclave itself survives; reissuing the call succeeds.
    TRANSIENT_ABORT = "transient-abort"
    #: Permanent loss: the enclave transitions to ``LOST`` and must be
    #: rebuilt (reinitialize + re-attest + restore) before any new call.
    ENCLAVE_CRASH = "enclave-crash"
    #: Switchless worker stall: the fast path is unavailable for the
    #: next ``stall_calls`` calls, forcing the hardware-transition
    #: fallback.
    WORKER_STALL = "worker-stall"
    #: EPC pressure spike: a hostile tenant touches ``spike_pages``
    #: pages, evicting resident pages and inflating later fault rates.
    EPC_PRESSURE = "epc-pressure"


_PHASES = ("pre", "mid")


@dataclass
class FaultRule:
    """One entry of a fault plan.

    A rule *matches* a boundary event when its kind is being consulted,
    ``routine`` fnmatch-matches the routine name, ``call_kind`` matches
    (``ecall``/``ocall``/``epc`` or ``*``) and the virtual clock lies in
    ``window_ns``. Among matching calls it *fires* according to
    ``at_call`` (exactly the Nth matching call), ``every`` (each Nth),
    and/or ``probability``; ``max_fires`` caps total firings.
    """

    kind: FaultKind
    routine: str = "*"
    call_kind: str = "*"
    probability: float = 1.0
    at_call: Optional[int] = None
    every: Optional[int] = None
    window_ns: Optional[Tuple[float, float]] = None
    max_fires: Optional[int] = None
    #: For crashes: "pre" (before the body dispatches — safe to retry)
    #: or "mid" (after the body ran — replay needs idempotency).
    phase: str = "pre"
    #: WORKER_STALL: how many consecutive calls the pool stays stalled.
    stall_calls: int = 4
    #: EPC_PRESSURE: hostile pages touched per spike.
    spike_pages: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.phase not in _PHASES:
            raise ConfigurationError(f"phase must be one of {_PHASES}")
        if self.kind is FaultKind.TRANSIENT_ABORT and self.phase != "pre":
            raise ConfigurationError(
                "transient aborts never execute the body: phase must be 'pre'"
            )
        if self.at_call is not None and self.at_call < 1:
            raise ConfigurationError("at_call is 1-based")
        if self.every is not None and self.every < 1:
            raise ConfigurationError("every must be >= 1")
        if self.stall_calls < 1:
            raise ConfigurationError("stall_calls must be >= 1")
        if self.spike_pages < 0:
            raise ConfigurationError("spike_pages cannot be negative")


@dataclass(frozen=True)
class FaultDecision:
    """What the transition layer should do about one fired rule."""

    kind: str
    phase: str
    crash: bool
    message: str


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in firing order (the replayable schedule)."""

    seq: int
    kind: str
    routine: str
    call_kind: str
    now_ns: float
    rule_index: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "routine": self.routine,
            "call_kind": self.call_kind,
            "now_ns": self.now_ns,
            "rule": self.rule_index,
        }


_TRANSITION_KINDS = (FaultKind.TRANSIENT_ABORT, FaultKind.ENCLAVE_CRASH)


class FaultInjector:
    """Deterministic chaos: decides which boundary events fail.

    Attach with ``platform.enable_fault_injection(injector)``. All
    decisions depend only on the seed, the rule list and the (virtual
    time, routine) sequence of consultations — two identical runs see
    identical fault schedules.
    """

    def __init__(self, seed: int = 0, rules: Sequence[FaultRule] = ()) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        self._rng = random.Random(seed)
        self._seen: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}
        self._stall_remaining: Dict[str, int] = {}
        self.events: List[FaultEvent] = []
        self.platform: Optional[Any] = None

    # -- wiring ---------------------------------------------------------------

    def bind(self, platform: Any) -> None:
        """Called by ``Platform.enable_fault_injection``."""
        self.platform = platform

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    # -- boundary probes ------------------------------------------------------

    def transition_fault(
        self, call_kind: str, routine: str, now_ns: float
    ) -> Optional[FaultDecision]:
        """Consulted by the transition layer before each ecall/ocall."""
        index, rule = self._consult(_TRANSITION_KINDS, routine, call_kind, now_ns)
        if rule is None:
            return None
        self._record(index, rule, routine, call_kind, now_ns)
        crash = rule.kind is FaultKind.ENCLAVE_CRASH
        if crash:
            message = (
                f"injected enclave crash ({rule.phase}-dispatch) during "
                f"{call_kind} {routine!r}"
            )
        else:
            message = f"injected transient abort during {call_kind} {routine!r}"
        return FaultDecision(
            kind=rule.kind.value,
            phase=rule.phase if crash else "pre",
            crash=crash,
            message=message,
        )

    def worker_stall(self, call_kind: str, routine: str, now_ns: float) -> bool:
        """Consulted by switchless dispatch; True forces the fallback."""
        remaining = self._stall_remaining.get(call_kind, 0)
        if remaining > 0:
            self._stall_remaining[call_kind] = remaining - 1
            return True
        index, rule = self._consult(
            (FaultKind.WORKER_STALL,), routine, call_kind, now_ns
        )
        if rule is None:
            return False
        self._record(index, rule, routine, call_kind, now_ns)
        # This call stalls now; stall_calls - 1 more follow it.
        self._stall_remaining[call_kind] = rule.stall_calls - 1
        return True

    def epc_pressure(self, now_ns: float) -> int:
        """Consulted by the driver; returns hostile pages to touch."""
        index, rule = self._consult(
            (FaultKind.EPC_PRESSURE,), "epc.access", "epc", now_ns
        )
        if rule is None:
            return 0
        self._record(index, rule, "epc.access", "epc", now_ns)
        return rule.spike_pages

    # -- introspection --------------------------------------------------------

    @property
    def faults_injected(self) -> int:
        return len(self.events)

    def fired_counts(self) -> Dict[int, int]:
        """Firings per rule index (rules that never fired are absent)."""
        return dict(self._fired)

    def event_schedule(self) -> Tuple[Tuple[Any, ...], ...]:
        """Hashable view of the fault schedule (determinism checks)."""
        return tuple(
            (e.seq, e.kind, e.routine, e.call_kind, e.now_ns, e.rule_index)
            for e in self.events
        )

    def to_dict(self, max_events: int = 200) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [
                {
                    "kind": rule.kind.value,
                    "routine": rule.routine,
                    "call_kind": rule.call_kind,
                    "probability": rule.probability,
                    "phase": rule.phase,
                    "fired": self._fired.get(i, 0),
                }
                for i, rule in enumerate(self.rules)
            ],
            "faults_injected": self.faults_injected,
            "events": [e.to_dict() for e in self.events[:max_events]],
        }

    # -- internals ------------------------------------------------------------

    def _consult(
        self,
        kinds: Tuple[FaultKind, ...],
        routine: str,
        call_kind: str,
        now_ns: float,
    ) -> Tuple[int, Optional[FaultRule]]:
        for index, rule in enumerate(self.rules):
            if rule.kind not in kinds:
                continue
            if rule.call_kind not in ("*", call_kind):
                continue
            if not fnmatchcase(routine, rule.routine):
                continue
            if rule.window_ns is not None:
                low, high = rule.window_ns
                if not low <= now_ns < high:
                    continue
            if (
                rule.max_fires is not None
                and self._fired.get(index, 0) >= rule.max_fires
            ):
                continue
            seen = self._seen.get(index, 0) + 1
            self._seen[index] = seen
            if self._fires(index, rule, seen):
                return index, rule
        return -1, None

    def _fires(self, index: int, rule: FaultRule, seen: int) -> bool:
        if rule.at_call is not None and seen != rule.at_call:
            return False
        if rule.every is not None and seen % rule.every != 0:
            return False
        if rule.probability >= 1.0:
            return True
        # One draw per eligible consultation, in consultation order:
        # the schedule is a pure function of (seed, rules, call trace).
        return self._rng.random() < rule.probability

    def _record(
        self,
        index: int,
        rule: FaultRule,
        routine: str,
        call_kind: str,
        now_ns: float,
    ) -> None:
        self._fired[index] = self._fired.get(index, 0) + 1
        self.events.append(
            FaultEvent(
                seq=len(self.events) + 1,
                kind=rule.kind.value,
                routine=routine,
                call_kind=call_kind,
                now_ns=now_ns,
                rule_index=index,
            )
        )
        platform = self.platform
        obs = platform.obs if platform is not None else None
        if obs is not None:
            obs.metrics.counter("sgx.faults_injected").inc()

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, rules={len(self.rules)}, "
            f"injected={self.faults_injected})"
        )
