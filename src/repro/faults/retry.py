"""Retry policy and the idempotency contract for RMI crossings.

At-most-once delivery is the load-bearing semantic: a relay call that
failed *mid-dispatch* may already have mutated trusted state, so blind
re-execution would double-apply it. The runtime therefore only replays
a crossing whose outcome is indeterminate when the target routine is
declared idempotent — either by decorating the method with
:func:`idempotent` or by listing a routine-name pattern on the
:class:`RetryPolicy`. Everything else surfaces a typed
:class:`~repro.errors.NonIdempotentReplayError`.

Backoff is charged as virtual nanoseconds, so retrying is visible in
the ledger (``rmi.retry.backoff``) like any other cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Tuple, TypeVar

from repro.errors import ConfigurationError

F = TypeVar("F", bound=Callable)

#: Function attribute marking a trusted/untrusted method as safe to
#: replay. Read by ``RmiRuntime.invoke`` when a retry policy is active.
IDEMPOTENT_ATTR = "__montsalvat_idempotent__"


def idempotent(func: F) -> F:
    """Mark a method as replay-safe across enclave loss.

    Use on reads and on writes whose effect is absorbing (e.g. put-same
    -value, counters keyed by invocation id). The runtime may then
    re-execute the relay after a *mid-call* loss without violating
    at-most-once semantics.
    """
    setattr(func, IDEMPOTENT_ATTR, True)
    return func


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for enclave-lost crossings.

    ``max_attempts`` counts total tries (first call + retries). Backoff
    before retry ``i`` (1-based) is
    ``min(base_backoff_ns * backoff_multiplier**(i-1), max_backoff_ns)``
    virtual nanoseconds.
    """

    max_attempts: int = 4
    base_backoff_ns: float = 50_000.0
    backoff_multiplier: float = 2.0
    max_backoff_ns: float = 10_000_000.0
    #: fnmatch patterns of routine names treated as idempotent even
    #: without the decorator (e.g. ``relay_*_get_*``, ``gc_release``).
    idempotent_patterns: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_ns < 0 or self.max_backoff_ns < 0:
            raise ConfigurationError("backoff cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")

    def backoff_ns(self, retry_index: int) -> float:
        """Virtual ns to charge before the ``retry_index``-th retry."""
        if retry_index < 1:
            raise ConfigurationError("retry_index is 1-based")
        backoff = self.base_backoff_ns * (
            self.backoff_multiplier ** (retry_index - 1)
        )
        return min(backoff, self.max_backoff_ns)

    def is_idempotent(self, routine: str) -> bool:
        return any(
            fnmatchcase(routine, pattern)
            for pattern in self.idempotent_patterns
        )
