"""Retry policy and the idempotency contract for RMI crossings.

At-most-once delivery is the load-bearing semantic: a relay call that
failed *mid-dispatch* may already have mutated trusted state, so blind
re-execution would double-apply it. The runtime therefore only replays
a crossing whose outcome is indeterminate when the target routine is
declared idempotent — either by decorating the method with
:func:`idempotent` or by listing a routine-name pattern on the
:class:`RetryPolicy`. Everything else surfaces a typed
:class:`~repro.errors.NonIdempotentReplayError`.

Backoff is charged as virtual nanoseconds, so retrying is visible in
the ledger (``rmi.retry.backoff``) like any other cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError, RetryBudgetExhaustedError

F = TypeVar("F", bound=Callable)

#: Function attribute marking a trusted/untrusted method as safe to
#: replay. Read by ``RmiRuntime.invoke`` when a retry policy is active.
IDEMPOTENT_ATTR = "__montsalvat_idempotent__"


def idempotent(func: F) -> F:
    """Mark a method as replay-safe across enclave loss.

    Use on reads and on writes whose effect is absorbing (e.g. put-same
    -value, counters keyed by invocation id). The runtime may then
    re-execute the relay after a *mid-call* loss without violating
    at-most-once semantics.
    """
    setattr(func, IDEMPOTENT_ATTR, True)
    return func


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for enclave-lost crossings.

    ``max_attempts`` counts total tries (first call + retries). Backoff
    before retry ``i`` (1-based) is
    ``min(base_backoff_ns * backoff_multiplier**(i-1), max_backoff_ns)``
    virtual nanoseconds.
    """

    max_attempts: int = 4
    base_backoff_ns: float = 50_000.0
    backoff_multiplier: float = 2.0
    max_backoff_ns: float = 10_000_000.0
    #: fnmatch patterns of routine names treated as idempotent even
    #: without the decorator (e.g. ``relay_*_get_*``, ``gc_release``).
    idempotent_patterns: Tuple[str, ...] = ()
    #: Per-call deadline: virtual ns between a crossing's first dispatch
    #: and its last permissible retry. ``None`` (default) keeps today's
    #: attempt-count-only behaviour, byte for byte.
    call_deadline_ns: Optional[float] = None
    #: Total retry budget: cumulative backoff virtual ns a single policy
    #: user (coordinator, migrator) may charge across *all* its calls.
    #: The bound that stops a recovery storm from retrying forever.
    retry_budget_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_ns < 0 or self.max_backoff_ns < 0:
            raise ConfigurationError("backoff cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.call_deadline_ns is not None and self.call_deadline_ns <= 0:
            raise ConfigurationError("call_deadline_ns must be positive")
        if self.retry_budget_ns is not None and self.retry_budget_ns <= 0:
            raise ConfigurationError("retry_budget_ns must be positive")

    @property
    def budgeted(self) -> bool:
        """True when either virtual-time bound is configured."""
        return self.call_deadline_ns is not None or self.retry_budget_ns is not None

    def backoff_ns(self, retry_index: int) -> float:
        """Virtual ns to charge before the ``retry_index``-th retry."""
        if retry_index < 1:
            raise ConfigurationError("retry_index is 1-based")
        backoff = self.base_backoff_ns * (
            self.backoff_multiplier ** (retry_index - 1)
        )
        return min(backoff, self.max_backoff_ns)

    def is_idempotent(self, routine: str) -> bool:
        return any(
            fnmatchcase(routine, pattern)
            for pattern in self.idempotent_patterns
        )


class RetryBudget:
    """Mutable virtual-time accounting for one :class:`RetryPolicy` user.

    The policy itself is frozen; the budget tracks what its owner (a
    recovery coordinator, the shard migrator) has already spent:

    - ``start_call(now_ns)`` stamps a crossing's first dispatch so the
      per-call deadline is measured against *elapsed virtual time* —
      which includes rebuild/re-attest/restore costs, not just backoff;
    - ``authorize(now_ns, backoff_ns, routine)`` either debits the next
      backoff or raises :class:`~repro.errors.RetryBudgetExhaustedError`
      when the deadline or the total budget would be exceeded.

    With an unbudgeted policy every call is a no-op, so attaching a
    budget to default-configured code changes nothing.
    """

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.spent_ns = 0.0
        self._call_started_ns: Optional[float] = None

    def start_call(self, now_ns: float) -> None:
        self._call_started_ns = now_ns

    def authorize(self, now_ns: float, backoff_ns: float, routine: str) -> float:
        """Permit (and debit) the next retry's backoff, or raise."""
        policy = self.policy
        deadline = policy.call_deadline_ns
        if deadline is not None and self._call_started_ns is not None:
            elapsed = now_ns - self._call_started_ns
            if elapsed + backoff_ns > deadline:
                raise RetryBudgetExhaustedError(
                    f"crossing {routine!r} blew its {deadline:.0f}ns call "
                    f"deadline ({elapsed:.0f}ns elapsed + {backoff_ns:.0f}ns "
                    "backoff)"
                )
        budget = policy.retry_budget_ns
        if budget is not None and self.spent_ns + backoff_ns > budget:
            raise RetryBudgetExhaustedError(
                f"crossing {routine!r} exhausted the {budget:.0f}ns retry "
                f"budget ({self.spent_ns:.0f}ns already spent)"
            )
        self.spent_ns += backoff_ns
        return backoff_ns

    @property
    def remaining_ns(self) -> Optional[float]:
        budget = self.policy.retry_budget_ns
        if budget is None:
            return None
        return max(0.0, budget - self.spent_ns)

    def __repr__(self) -> str:
        return (
            f"RetryBudget(spent_ns={self.spent_ns:.0f}, "
            f"deadline={self.policy.call_deadline_ns}, "
            f"budget={self.policy.retry_budget_ns})"
        )
