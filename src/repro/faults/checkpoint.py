"""Sealed checkpoints: durable trusted state across enclave loss.

A SecureKeeper-style shielding runtime survives ``ENCLAVE_LOST`` by
periodically sealing its in-enclave state to untrusted storage and
restoring from the latest blob after the rebuild + re-attestation. The
:class:`CheckpointManager` generalises that: components register named
(capture, restore) pairs, the manager seals every captured snapshot
through :class:`~repro.sgx.sealing.SealingService` (so blobs are bound
to the enclave measurement and priced through ``sgx.seal``), and the
recovery coordinator calls :meth:`restore_all` once the rebuilt enclave
is attested.

``interval_ns`` trades checkpoint cost against exposure: 0 checkpoints
after every successful crossing (maximal durability, maximal sealing
cost); larger intervals amortise sealing but lose the updates since the
last checkpoint on a crash — exactly the axis the chaos ablation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sgx.sealing import SealedBlob, SealingService


@dataclass
class CheckpointStats:
    """Work done by one checkpoint manager."""

    checkpoints: int = 0
    entries_sealed: int = 0
    restores: int = 0
    entries_restored: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "checkpoints": self.checkpoints,
            "entries_sealed": self.entries_sealed,
            "restores": self.restores,
            "entries_restored": self.entries_restored,
        }


@dataclass
class _Entry:
    name: str
    capture: Callable[[], Any]
    restore: Callable[[Any], None]
    wipe: Optional[Callable[[], None]] = None
    blob: Optional[SealedBlob] = None


class CheckpointManager:
    """Seals registered state snapshots at a configurable cadence."""

    def __init__(self, sealing: SealingService, interval_ns: float = 0.0) -> None:
        if interval_ns < 0:
            raise ConfigurationError("interval_ns cannot be negative")
        self.sealing = sealing
        self.interval_ns = interval_ns
        self.stats = CheckpointStats()
        self._entries: List[_Entry] = []
        self._last_checkpoint_ns: Optional[float] = None

    @property
    def platform(self):
        return self.sealing.enclave.platform

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        capture: Callable[[], Any],
        restore: Callable[[Any], None],
        wipe: Optional[Callable[[], None]] = None,
    ) -> None:
        """Register a named snapshot source.

        ``capture`` returns a picklable snapshot, ``restore`` applies
        one to the rebuilt world, ``wipe`` (optional) clears the stale
        live state first — restore_all always wipes before restoring so
        an entry with no blob yet comes back empty, not stale.
        """
        if any(entry.name == name for entry in self._entries):
            raise ConfigurationError(f"checkpoint entry {name!r} already exists")
        self._entries.append(
            _Entry(name=name, capture=capture, restore=restore, wipe=wipe)
        )

    # -- checkpointing --------------------------------------------------------

    def checkpoint(self) -> int:
        """Seal every registered entry now; returns entries sealed."""
        for entry in self._entries:
            entry.blob = self.sealing.seal(entry.capture())
            self.stats.entries_sealed += 1
        self.stats.checkpoints += 1
        self._last_checkpoint_ns = self.platform.clock.now_ns
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("recovery.checkpoints").inc()
        return len(self._entries)

    def checkpoint_entry(self, name: str) -> None:
        """Seal one named entry now (targeted, not a full checkpoint).

        The shard migrator uses this to seal exactly the key being
        live-migrated: same sealing path and pricing as a full
        checkpoint, scoped to one entry.
        """
        entry = self._entry(name)
        entry.blob = self.sealing.seal(entry.capture())
        self.stats.entries_sealed += 1

    def restore_entry(self, name: str) -> None:
        """Unseal + apply one entry's latest blob (migration restore)."""
        entry = self._entry(name)
        if entry.blob is None:
            raise ConfigurationError(
                f"checkpoint entry {name!r} was never sealed"
            )
        entry.restore(self.sealing.unseal(entry.blob))
        self.stats.entries_restored += 1

    def _entry(self, name: str) -> _Entry:
        for entry in self._entries:
            if entry.name == name:
                return entry
        raise ConfigurationError(f"no checkpoint entry named {name!r}")

    def maybe_checkpoint(self) -> bool:
        """Checkpoint if the configured interval has elapsed."""
        if not self._entries:
            return False
        now = self.platform.clock.now_ns
        if (
            self._last_checkpoint_ns is not None
            and now - self._last_checkpoint_ns < self.interval_ns
        ):
            return False
        self.checkpoint()
        return True

    # -- restore --------------------------------------------------------------

    def restore_all(self) -> int:
        """Wipe live state and restore the latest sealed snapshots.

        Called by the recovery coordinator after ``reinitialize()`` +
        re-attestation. Entries never checkpointed are only wiped: the
        state they guarded died with the enclave.
        """
        restored = 0
        for entry in self._entries:
            if entry.wipe is not None:
                entry.wipe()
            if entry.blob is not None:
                entry.restore(self.sealing.unseal(entry.blob))
                restored += 1
                self.stats.entries_restored += 1
        self.stats.restores += 1
        return restored

    @property
    def entry_names(self) -> List[str]:
        return [entry.name for entry in self._entries]


def register_mirror_registry(
    manager: CheckpointManager, state: Any, name: str = "trusted-mirrors"
) -> None:
    """Checkpoint a :class:`~repro.core.state.SideState`'s mirror registry.

    Captures the (hash -> mirror) mapping; wipes it (and the identity
    hash cache) before restoring so a crash without any checkpoint
    leaves the side verifiably empty. The hash cache is rebuilt from
    the restored mirrors — unpickling gives them fresh identities, so
    the pre-crash cache would be stale.
    """
    registry = state.registry

    def capture() -> Any:
        return tuple(sorted(registry.items()))

    def wipe() -> None:
        registry.clear()
        state.mirror_hashes.clear()

    def restore(snapshot: Any) -> None:
        for proxy_hash, mirror in snapshot:
            registry.add(proxy_hash, mirror)
            state.mirror_hashes[id(mirror)] = proxy_hash

    manager.register(name, capture=capture, restore=restore, wipe=wipe)
