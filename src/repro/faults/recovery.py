"""Enclave-loss recovery: retry loop + rebuild/re-attest/restore.

The :class:`RecoveryCoordinator` sits between :class:`RmiRuntime` and
the transition layer. Every proxy crossing runs through
:meth:`run_with_retry`; when the substrate raises
:class:`~repro.errors.EnclaveLostError` the coordinator

1. rebuilds a LOST enclave (priced ``reinitialize()``),
2. re-attests the rebuilt enclave against its expected measurement
   (local attestation through :class:`AttestationService`, priced under
   ``recovery.reattest``),
3. restores trusted state from the latest sealed checkpoints,
4. charges exponential backoff as virtual ns and reissues the call —
   but only when at-most-once semantics allow it: a *mid-call* loss
   leaves the crossing's outcome indeterminate, and replaying a routine
   not declared idempotent raises
   :class:`~repro.errors.NonIdempotentReplayError` instead.

Every component of the recovery cost is measured separately
(``reinit_ns`` / ``reattest_ns`` / ``restore_ns`` / ``backoff_ns``) so
the chaos ablation can break down where the robustness budget goes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, TypeVar

from repro.errors import (
    EnclaveLostError,
    NonIdempotentReplayError,
    RetryExhaustedError,
)
from repro.faults.checkpoint import CheckpointManager, register_mirror_registry
from repro.faults.retry import RetryBudget, RetryPolicy
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave
from repro.sgx.sealing import SealingService

T = TypeVar("T")

#: Fixed cost of the post-rebuild local attestation handshake
#: (EREPORT + quote + verification round trip).
_REATTEST_FIXED_CYCLES = 120_000.0


@dataclass
class RecoveryStats:
    """What recovering from enclave loss cost, by component."""

    recoveries: int = 0
    retries: int = 0
    reinit_ns: float = 0.0
    reattest_ns: float = 0.0
    restore_ns: float = 0.0
    backoff_ns: float = 0.0
    mirrors_restored: int = 0
    #: Logical call-effects refused on non-idempotent replay. A batch
    #: crossing that dies mid-call loses all N member calls at once, so
    #: this counts the durability cost of batching under faults.
    calls_refused: int = 0

    @property
    def total_ns(self) -> float:
        return self.reinit_ns + self.reattest_ns + self.restore_ns + self.backoff_ns

    def to_dict(self) -> Dict[str, float]:
        return {
            "recoveries": self.recoveries,
            "retries": self.retries,
            "reinit_ns": self.reinit_ns,
            "reattest_ns": self.reattest_ns,
            "restore_ns": self.restore_ns,
            "backoff_ns": self.backoff_ns,
            "total_ns": self.total_ns,
            "mirrors_restored": self.mirrors_restored,
            "calls_refused": self.calls_refused,
        }


class RecoveryCoordinator:
    """Retries crossings across enclave loss, rebuilding as needed."""

    def __init__(
        self,
        enclave: Enclave,
        attestation: Optional[AttestationService] = None,
        checkpoints: Optional[CheckpointManager] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.enclave = enclave
        self.platform = enclave.platform
        self.attestation = attestation
        self.checkpoints = checkpoints
        self.policy = policy or RetryPolicy()
        #: Virtual-time retry accounting (per-call deadline + total
        #: budget). Inert for unbudgeted policies.
        self.budget = RetryBudget(self.policy)
        #: Invocation ids whose relay may have executed before the
        #: reply was lost — replay needs an idempotency declaration.
        self._indeterminate: Set[int] = set()
        self.stats = RecoveryStats()

    # -- the retry loop -------------------------------------------------------

    def run_with_retry(
        self,
        operation: Callable[[], T],
        routine: str,
        invocation_id: int,
        idempotent: bool = False,
        calls: int = 1,
    ) -> T:
        """Run one crossing, recovering and retrying on enclave loss.

        ``calls`` > 1 marks a coalesced batch: the whole batch shares
        one invocation id, so it retries — or refuses replay — as a
        unit, and a refused replay loses ``calls`` call-effects.
        """
        attempt = 0
        if self.policy.budgeted:
            self.budget.start_call(self.platform.clock.now_ns)
        while True:
            attempt += 1
            try:
                result = operation()
            except EnclaveLostError as exc:
                self._note_loss(invocation_id, exc)
                if not self.enclave.usable:
                    self.recover()
                if invocation_id in self._indeterminate and not (
                    idempotent or self.policy.is_idempotent(routine)
                ):
                    self.stats.calls_refused += calls
                    obs = self.platform.obs
                    if obs is not None:
                        obs.metrics.counter("recovery.calls_refused").inc(calls)
                    raise NonIdempotentReplayError(
                        f"crossing {routine!r} (invocation {invocation_id}, "
                        f"{calls} call(s)) was lost mid-call; the relay may "
                        "already have executed and the routine is not marked "
                        "idempotent"
                    ) from exc
                if attempt >= self.policy.max_attempts:
                    raise RetryExhaustedError(
                        f"crossing {routine!r} failed {attempt} times "
                        f"(last: {exc})"
                    ) from exc
                self._backoff(attempt, routine)
            else:
                self._indeterminate.discard(invocation_id)
                if self.checkpoints is not None:
                    self.checkpoints.maybe_checkpoint()
                return result

    def _note_loss(self, invocation_id: int, exc: EnclaveLostError) -> None:
        if exc.phase == "mid":
            self._indeterminate.add(invocation_id)

    def _backoff(self, attempt: int, routine: str) -> None:
        backoff = self.policy.backoff_ns(attempt)
        if self.policy.budgeted:
            # Raises RetryBudgetExhaustedError before anything is
            # charged: an unaffordable retry is never half-taken.
            self.budget.authorize(self.platform.clock.now_ns, backoff, routine)
        self.platform.charge_ns("rmi.retry.backoff", backoff)
        self.stats.retries += 1
        self.stats.backoff_ns += backoff
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("rmi.retries").inc()

    # -- rebuild --------------------------------------------------------------

    def recover(self) -> float:
        """Rebuild a LOST enclave: reinit + re-attest + restore.

        Returns the total virtual ns the rebuild cost. No-op when the
        enclave is already usable (another caller recovered it first).
        """
        if self.enclave.usable:
            return 0.0
        clock = self.platform.clock
        obs = self.platform.obs
        span = None
        if obs is not None:
            span = obs.tracer.start_span(
                "recovery.rebuild", attrs={"enclave": self.enclave.enclave_id}
            )
        started_ns = clock.now_ns
        try:
            mark = clock.now_ns
            self.enclave.reinitialize()
            reinit_ns = clock.now_ns - mark

            mark = clock.now_ns
            self._reattest()
            reattest_ns = clock.now_ns - mark

            mark = clock.now_ns
            restored = 0
            if self.checkpoints is not None:
                restored = self.checkpoints.restore_all()
            restore_ns = clock.now_ns - mark
        finally:
            if span is not None:
                span.set_attr("enclave_rebuilds", self.enclave.rebuilds)
                obs.tracer.end_span(span)

        self.stats.recoveries += 1
        self.stats.reinit_ns += reinit_ns
        self.stats.reattest_ns += reattest_ns
        self.stats.restore_ns += restore_ns
        self.stats.mirrors_restored += restored
        if obs is not None:
            obs.metrics.counter("recovery.recoveries").inc()
            obs.metrics.counter("recovery.reinit_ns").inc(reinit_ns)
            obs.metrics.counter("recovery.reattest_ns").inc(reattest_ns)
            obs.metrics.counter("recovery.restore_ns").inc(restore_ns)
        return clock.now_ns - started_ns

    def _reattest(self) -> None:
        """Local re-attestation: prove the rebuilt enclave is the same
        build before trusting it with restored state."""
        self.platform.charge_cycles("recovery.reattest", _REATTEST_FIXED_CYCLES)
        if self.attestation is None:
            return
        report = self.attestation.create_report(
            self.enclave, report_data=b"post-recovery"
        )
        quote = self.attestation.quote(report)
        self.attestation.verify(quote, self.enclave.measurement)


def attach_recovery(
    session: Any,
    checkpoint_interval_ns: float = 0.0,
    policy: Optional[RetryPolicy] = None,
    attestation: Optional[AttestationService] = None,
    platform_secret: bytes = b"",
    checkpoint_trusted_state: bool = True,
) -> RecoveryCoordinator:
    """Wire full recovery into a running :class:`MontsalvatSession`.

    Builds a :class:`SealingService` + :class:`CheckpointManager` over
    the session's enclave, registers the trusted mirror registry as
    checkpointed state, and installs the coordinator on the session's
    runtime so every proxy crossing retries through it.
    """
    from repro.core.annotations import Side

    sealing = SealingService(session.enclave, platform_secret=platform_secret)
    checkpoints = CheckpointManager(sealing, interval_ns=checkpoint_interval_ns)
    if checkpoint_trusted_state:
        register_mirror_registry(
            checkpoints, session.runtime.state_of(Side.TRUSTED)
        )
    coordinator = RecoveryCoordinator(
        session.enclave,
        attestation=attestation or AttestationService(platform_key=b"chaos"),
        checkpoints=checkpoints,
        policy=policy,
    )
    session.runtime.recovery = coordinator
    return coordinator
