"""Deterministic fault injection and enclave-loss recovery.

``repro.faults`` turns robustness into a measurable experiment axis:

- :class:`FaultInjector` — seeded chaos plans (transient transition
  aborts, permanent enclave crashes, switchless worker stalls, EPC
  pressure spikes) consulted by the SGX substrate via
  ``Platform.enable_fault_injection``; strictly zero-cost when off.
- :class:`RetryPolicy` / :func:`idempotent` — bounded exponential
  backoff and the at-most-once idempotency contract for RMI crossings.
- :class:`CheckpointManager` — sealed state snapshots through
  :class:`~repro.sgx.sealing.SealingService`, restored after rebuild.
- :class:`RecoveryCoordinator` / :func:`attach_recovery` — the retry
  loop plus the priced rebuild pipeline (reinitialize → re-attest →
  restore from sealed checkpoints).

See ``docs/FAULTS.md`` for the fault model and recovery semantics.
"""

from repro.faults.checkpoint import (
    CheckpointManager,
    CheckpointStats,
    register_mirror_registry,
)
from repro.faults.injector import (
    FaultDecision,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultRule,
)
from repro.faults.recovery import (
    RecoveryCoordinator,
    RecoveryStats,
    attach_recovery,
)
from repro.faults.retry import (
    IDEMPOTENT_ATTR,
    RetryBudget,
    RetryPolicy,
    idempotent,
)

__all__ = [
    "CheckpointManager",
    "CheckpointStats",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultRule",
    "IDEMPOTENT_ATTR",
    "RecoveryCoordinator",
    "RecoveryStats",
    "RetryBudget",
    "RetryPolicy",
    "attach_recovery",
    "idempotent",
    "register_mirror_registry",
]
