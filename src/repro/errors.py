"""Exception hierarchy for the Montsalvat reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch the whole family with one handler while still distinguishing
subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid values."""


class SgxError(ReproError):
    """Base class for SGX-substrate errors."""


class EnclaveError(SgxError):
    """Enclave lifecycle violation (double init, use after destroy...)."""


class EnclaveLostError(EnclaveError):
    """``SGX_ERROR_ENCLAVE_LOST`` analog: the enclave vanished under the
    caller (power transition, AEX storm, injected crash).

    ``phase`` records when the loss surfaced relative to the crossing's
    body: ``"pre"`` means the call never dispatched (safe to reissue),
    ``"mid"`` means the body may have executed before the reply was
    lost (replay needs an idempotency guarantee). ``transient`` is True
    for aborts that leave the enclave itself intact.
    """

    def __init__(
        self, message: str, *, phase: str = "pre", transient: bool = False
    ) -> None:
        super().__init__(message)
        self.phase = phase
        self.transient = transient


class TransitionError(SgxError):
    """An ecall/ocall was attempted outside a valid transition context."""


class AttestationError(SgxError):
    """Enclave measurement or quote verification failed."""


class EpcError(SgxError):
    """EPC capacity or page-state violation."""


class BuildError(ReproError):
    """Native-image build pipeline failure (closed-world violations...)."""


class ReachabilityError(BuildError):
    """Points-to/reachability analysis failed or found a contradiction."""


class PartitionError(ReproError):
    """Montsalvat partitioning failure (bad annotations, mixed trust...)."""


class AnnotationError(PartitionError):
    """A class carries an invalid or conflicting trust annotation."""


class RmiError(ReproError):
    """Cross-runtime remote method invocation failure."""


class SerializationError(RmiError):
    """An argument or return value could not be (de)serialized."""


class ArenaError(SerializationError):
    """An arena-backed zero-copy view could not be honoured.

    Subclasses :class:`SerializationError` so callers guarding the wire
    codec catch arena failures with the same handler — a borrowed view
    that cannot be decoded is, to them, exactly a serialization failure.
    """


class StaleViewError(ArenaError):
    """A borrowed arena view outlived its region's generation.

    Raised when a view is read after its region was reclaimed (batch
    landed, arena reset) or invalidated (shard recovery bumped the
    generation). The alternative — silently reading whatever bytes now
    occupy the region — is exactly the use-after-free this error
    prevents."""


class ArenaCapacityError(ArenaError):
    """The arena's pinned buffer cannot fit the requested region.

    Callers treat this as "stage elsewhere": the RMI encoder falls back
    to the classic serialized path for the value, so an undersized
    arena degrades to classic pricing instead of failing the call."""


class RegistryError(RmiError):
    """Mirror-proxy registry lookup or registration failure."""


class RetryExhaustedError(RmiError):
    """An RMI invocation kept failing after every allowed retry."""


class RetryBudgetExhaustedError(RetryExhaustedError):
    """A retry loop ran out of virtual time before it ran out of
    attempts.

    Raised when a :class:`~repro.faults.RetryPolicy` carries a per-call
    deadline or a total retry budget and the next backoff would exceed
    it — the bound that stops a recovery storm from retrying forever.
    Subclasses :class:`RetryExhaustedError` so existing handlers treat
    both exhaustion modes uniformly."""


class OverloadError(ReproError):
    """The admission layer refused a request to protect the service.

    ``reason`` distinguishes the degradation modes: ``"queue-full"``
    (the bounded admission queue overflowed), ``"deadline"`` (the
    request waited past its queueing deadline) and ``"backpressure"``
    (the per-app token bucket is empty)."""

    def __init__(self, message: str, *, reason: str = "queue-full") -> None:
        super().__init__(message)
        self.reason = reason


class NonIdempotentReplayError(RmiError):
    """A crossing failed *mid-call* and cannot be replayed safely.

    The relay may have executed inside the enclave before the reply was
    lost; re-invoking a routine that is not marked idempotent would
    break at-most-once delivery, so the runtime surfaces this typed
    error instead of silently re-executing."""


class BatchingError(RmiError):
    """The call coalescer was misconfigured (e.g. a non-void routine
    was declared batchable: its return value was silently discarded
    while the caller already received ``None``)."""


class ShimError(ReproError):
    """The in-enclave shim libc rejected or failed a relayed call."""


class HeapError(ReproError):
    """Simulated heap exhaustion or invalid allocation."""


class StoreError(ReproError):
    """PalDB-like store format or usage error."""


class GraphError(ReproError):
    """GraphChi-like engine or sharder error."""
