"""Optional fine-grained instrumentation installers.

Most subsystems consult ``platform.obs`` directly on their hot paths;
the helpers here cover components that have no platform reference of
their own (the raw :class:`~repro.sgx.epc.EpcPageCache`) or that want
page-granular event streams beyond the default counters.
"""

from __future__ import annotations

from typing import Any

from repro.obs.core import Observability


def install_epc_observer(cache: Any, obs: Observability) -> None:
    """Stream per-page EPC faults/evictions into ``obs``.

    ``cache`` is an :class:`~repro.sgx.epc.EpcPageCache`; its
    ``observer`` hook fires as ``observer(kind, enclave_id, page)`` with
    kind ``"fault"`` or ``"evict"``. Off by default because a paging
    cliff run touches millions of pages — enable it for targeted
    paging investigations, rely on the driver-level counters otherwise.
    """

    def observer(kind: str, enclave_id: int, page: int) -> None:
        obs.metrics.counter(f"epc.cache.{kind}s").inc()
        obs.tracer.instant(
            f"epc.{kind}", attrs={"enclave": enclave_id, "page": page}
        )

    cache.observer = observer


def remove_epc_observer(cache: Any) -> None:
    cache.observer = None
