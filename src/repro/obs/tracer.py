"""Virtual-time span tracer.

Spans are nested intervals measured on the simulation's
:class:`~repro.costs.clock.VirtualClock`: a span opened around an ecall
covers exactly the virtual nanoseconds the cost model charged while it
was open, so the trace decomposes a figure's total time the same way
the ledger does — but with causal structure (which proxy call issued
which ecall, which ecall triggered which EPC faults).

Completed events live in a bounded ring buffer; once it is full, the
oldest events are dropped (and counted) rather than growing without
bound. Listeners registered with :meth:`SpanTracer.add_listener` see
*every* completed span regardless of ring capacity — the
:class:`~repro.sgx.profiler.TransitionProfiler` aggregates from that
stream.

The default tracer on every platform is :data:`NULL_TRACER`, whose
operations do nothing and charge nothing: with observability disabled
the virtual-time output of every experiment is unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Default ring-buffer capacity (completed spans + instant events).
DEFAULT_RING_CAPACITY = 65_536


class Span:
    """One completed or in-flight interval on the virtual clock."""

    __slots__ = ("span_id", "parent_id", "name", "start_ns", "end_ns", "attrs", "kind")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_ns: float,
        attrs: Optional[Dict[str, Any]] = None,
        kind: str = "span",
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[float] = None
        self.attrs = attrs if attrs is not None else {}
        self.kind = kind

    @property
    def duration_ns(self) -> float:
        """Virtual nanoseconds covered (0.0 while still open)."""
        if self.end_ns is None:
            return 0.0
        return self.end_ns - self.start_ns

    @property
    def closed(self) -> bool:
        return self.end_ns is not None

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = f"dur={self.duration_ns:.0f}ns" if self.closed else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _SpanContext:
    """``with tracer.span(...)`` support: starts on enter, ends on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start_span(self._name, attrs=self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is not None:
            if exc_type is not None:
                self._span.attrs.setdefault("error", exc_type.__name__)
            self._tracer.end_span(self._span)


class _NullSpan:
    """Inert span: accepts the whole Span surface, records nothing."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    start_ns = 0.0
    end_ns = 0.0
    duration_ns = 0.0
    closed = True
    kind = "null"

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the default when observability is disabled."""

    enabled = False
    dropped = 0

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> _NullSpan:
        return NULL_SPAN

    def start_span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> _NullSpan:
        return NULL_SPAN

    def end_span(self, span: Any) -> None:
        pass

    def instant(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        pass

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        pass

    def remove_listener(self, listener: Callable[[Span], None]) -> None:
        pass

    def events(self) -> List[Span]:
        return []

    def finished_spans(self) -> List[Span]:
        return []


NULL_TRACER = NullTracer()


class SpanTracer:
    """Nested-span tracer over a virtual clock.

    ``clock`` only needs a ``now_ns`` attribute, so the tracer works
    with :class:`~repro.costs.clock.VirtualClock` without importing it
    (keeping ``repro.obs`` import-cycle-free below ``repro.costs``).
    """

    enabled = True

    def __init__(self, clock: Any, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self._clock = clock
        self._capacity = capacity
        self._events: "deque[Span]" = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 1
        self._seq = 0
        self.dropped = 0
        self.misnested = 0
        self._listeners: List[Callable[[Span], None]] = []

    # -- recording ----------------------------------------------------------

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> _SpanContext:
        """Context manager: ``with tracer.span("rmi.invoke", attrs={...}):``."""
        return _SpanContext(self, name, attrs)

    def start_span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span at the current virtual instant."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, self._clock.now_ns, attrs=attrs)
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` at the current virtual instant and commit it."""
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            # Misnested close: drop the interlopers from the stack but
            # keep their records intact (they stay open).
            self.misnested += 1
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        span.end_ns = self._clock.now_ns
        self._commit(span)

    def instant(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Record a zero-duration marker (EPC fault, GC trigger, ...)."""
        parent = self._stack[-1].span_id if self._stack else None
        now = self._clock.now_ns
        span = Span(self._next_id, parent, name, now, attrs=attrs, kind="instant")
        self._next_id += 1
        span.end_ns = now
        self._commit(span)
        return span

    def _commit(self, span: Span) -> None:
        # Hot path: every span and instant in an observed run lands
        # here. One ring append + a guarded fan-out; the listener loop
        # is skipped entirely when nobody subscribed (the common case
        # for perf runs that only read the metrics registry).
        events = self._events
        if len(events) == self._capacity:
            self.dropped += 1
        events.append(span)
        self._seq += 1
        listeners = self._listeners
        if listeners:
            for listener in listeners:
                listener(span)

    # -- the span stream ----------------------------------------------------

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Subscribe to every completed event, bypassing the ring limit."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Span], None]) -> None:
        self._listeners.remove(listener)

    # -- introspection ------------------------------------------------------

    @property
    def sequence(self) -> int:
        """Number of events committed so far (monotonic, ignores drops)."""
        return self._seq

    def events(self) -> List[Span]:
        """All ring-buffered events (spans + instants), completion order."""
        return list(self._events)

    def finished_spans(self) -> List[Span]:
        """Ring-buffered proper spans (excludes instants)."""
        return [e for e in self._events if e.kind == "span"]

    def open_spans(self) -> List[Span]:
        return list(self._stack)

    def iter_events(self) -> Iterator[Span]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"SpanTracer(events={len(self._events)}, open={len(self._stack)}, "
            f"dropped={self.dropped})"
        )
