"""Machine-readable run artifacts.

An *artifact* is the JSON sibling of a figure's text table: the same
rows plus the ledger snapshot and metrics of the run that produced
them, under a versioned schema. Benchmarks write one per figure
(``benchmarks/results/<name>.json``) so the trajectory of the
reproduction is diffable across PRs, and the CLI writes one per
experiment when asked (``--metrics``).

Tables are duck-typed against
:class:`~repro.experiments.common.ExperimentTable` (``title``,
``x_label``, ``y_label``, ``series`` with ``name``/``points``) so this
module needs no imports from the experiment layer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

SCHEMA = "repro.obs/artifact@1"


def table_to_rows(table: Any) -> Dict[str, Any]:
    """Flatten an ExperimentTable-like object into plain JSON data."""
    return {
        "title": getattr(table, "title", ""),
        "x_label": getattr(table, "x_label", ""),
        "y_label": getattr(table, "y_label", ""),
        "notes": getattr(table, "notes", ""),
        "series": [
            {"name": series.name, "points": [[x, y] for x, y in series.points]}
            for series in getattr(table, "series", [])
        ],
    }


def run_artifact(
    name: str,
    tables: Sequence[Any] = (),
    ledger: Optional[Mapping[str, Tuple[int, float]]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one artifact document.

    ``ledger`` is a ``CostLedger.snapshot()``-shaped mapping
    (category -> (count, total_ns)); ``metrics`` a
    ``MetricsRegistry.snapshot()`` mapping.
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "name": name,
        "tables": [table_to_rows(t) for t in tables],
    }
    if ledger is not None:
        doc["ledger"] = {
            category: {"count": count, "total_ns": total_ns}
            for category, (count, total_ns) in sorted(ledger.items())
        }
    if metrics is not None:
        doc["metrics"] = dict(metrics)
    if extra:
        doc.update(extra)
    return doc


def validate_artifact(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed artifact."""
    if not isinstance(doc, dict):
        raise ValueError("artifact must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unknown artifact schema {doc.get('schema')!r}")
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        raise ValueError("artifact needs a non-empty name")
    tables = doc.get("tables", [])
    if not isinstance(tables, list):
        raise ValueError("artifact tables must be a list")
    for i, table in enumerate(tables):
        series: List[Any] = table.get("series", [])
        for s in series:
            if "name" not in s or "points" not in s:
                raise ValueError(f"tables[{i}] has a series without name/points")
            for point in s["points"]:
                if len(point) != 2:
                    raise ValueError(f"tables[{i}] series {s['name']!r} has a non-pair point")
    ledger = doc.get("ledger")
    if ledger is not None:
        for category, entry in ledger.items():
            if "count" not in entry or "total_ns" not in entry:
                raise ValueError(f"ledger entry {category!r} lacks count/total_ns")


def write_artifact(path: str, doc: Dict[str, Any]) -> None:
    validate_artifact(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False, default=str)
        handle.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        doc = json.load(handle)
    validate_artifact(doc)
    return doc
