"""Wall-clock self-profiler for the simulator's own hot paths.

Everything else in ``repro.obs`` measures *virtual* time — the cost the
simulated SGX machine would pay. This module measures the *real* time
the simulator itself spends computing, so the ROADMAP's speed work can
attribute wall-clock cost to subsystems (span-tracer emit, the
:class:`~repro.sgx.epc.EpcPageCache`, the wire codec, the
:class:`~repro.concurrency.scheduler.SessionScheduler` pump) before
optimising them.

Design constraints:

- **zero-cost when off** — nothing is patched and no guard runs on any
  hot path unless hooks are explicitly installed; ledgers, tables and
  artifact fingerprints are byte-identical with the profiler absent,
  because the profiler never references a platform, clock or ledger;
- **no ``sys.setprofile``** — an interpreter-wide tracing profiler
  slows every bytecode and skews the very numbers we want. Instead the
  known hot paths are wrapped explicitly and individually
  (:class:`SimulatorHooks`), and coarse phases use
  :meth:`WallProfiler.profile_section`;
- **deterministic tests** — the timer is injectable, so the call-tree
  shape and exports can be asserted exactly.

The aggregate is a call tree (sections nest), exportable as a top-N
hotspot table, a collapsed-stack text file (feed it to ``flamegraph.pl``
or paste into https://www.speedscope.app) and a ``repro.obs/perf@1``
JSON document.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

SCHEMA = "repro.obs/perf@1"

#: Timer signature: returns integer (or float) nanoseconds.
Timer = Callable[[], int]


class _Node:
    """One call-tree node: a section name under a particular parent."""

    __slots__ = ("name", "calls", "total_ns", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_ns = 0
        self.children: Dict[str, "_Node"] = {}

    @property
    def child_ns(self) -> int:
        return sum(child.total_ns for child in self.children.values())

    @property
    def self_ns(self) -> int:
        """Time in this section excluding nested sections."""
        return max(0, self.total_ns - self.child_ns)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "children": [
                self.children[name].to_dict() for name in sorted(self.children)
            ],
        }


class _Section:
    """``with profiler.profile_section(name):`` — push/pop one node."""

    __slots__ = ("_profiler", "_name", "_prev", "_start")

    def __init__(self, profiler: "WallProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Section":
        profiler = self._profiler
        parent = profiler._current
        node = parent.children.get(self._name)
        if node is None:
            node = _Node(self._name)
            parent.children[self._name] = node
        self._prev = parent
        profiler._current = node
        self._start = profiler._timer()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        profiler = self._profiler
        node = profiler._current
        node.total_ns += profiler._timer() - self._start
        node.calls += 1
        profiler._current = self._prev


class WallProfiler:
    """Low-overhead sectioned wall-clock profiler.

    Sections nest: opening ``b`` while ``a`` is open attributes the
    time to path ``a;b``, and ``a``'s *self* time excludes it. Directly
    recursive sections are attributed to the outermost frame only (the
    simulator's hot paths do not self-recurse at section granularity).
    """

    def __init__(self, timer: Timer = time.perf_counter_ns) -> None:
        self._timer = timer
        self.root = _Node("")
        self._current: _Node = self.root

    # -- recording -----------------------------------------------------------

    def profile_section(self, name: str) -> _Section:
        return _Section(self, name)

    def record(self, name: str, wall_ns: int) -> None:
        """Attribute pre-measured time to a child of the current node."""
        parent = self._current
        node = parent.children.get(name)
        if node is None:
            node = _Node(name)
            parent.children[name] = node
        node.calls += 1
        node.total_ns += wall_ns

    def reset(self) -> None:
        self.root = _Node("")
        self._current = self.root

    # -- aggregate views -----------------------------------------------------

    @property
    def total_ns(self) -> int:
        """Wall nanoseconds covered by top-level sections."""
        return self.root.child_ns

    def walk(self) -> Iterator[Tuple[Tuple[str, ...], _Node]]:
        """Yield (path, node) depth-first, root excluded."""

        def visit(node: _Node, path: Tuple[str, ...]) -> Iterator[Tuple[Tuple[str, ...], _Node]]:
            for name in sorted(node.children):
                child = node.children[name]
                child_path = path + (name,)
                yield child_path, child
                yield from visit(child, child_path)

        yield from visit(self.root, ())

    def hotspots(self, top: int = 5) -> List[Dict[str, Any]]:
        """Top-``top`` tree paths by *self* time (ties by path)."""
        rows = [
            {
                "path": ";".join(path),
                "name": node.name,
                "calls": node.calls,
                "total_ns": node.total_ns,
                "self_ns": node.self_ns,
            }
            for path, node in self.walk()
        ]
        rows.sort(key=lambda r: (-r["self_ns"], r["path"]))
        return rows[:top]

    def self_by_name(self) -> Dict[str, int]:
        """Self nanoseconds aggregated by section *name* across the
        whole tree (a hook like ``wire.encode`` appears under many
        parents; this view sums them)."""
        out: Dict[str, int] = {}
        for _, node in self.walk():
            out[node.name] = out.get(node.name, 0) + node.self_ns
        return out

    def shares(self) -> Dict[str, float]:
        """Per-section-name share of the total profiled wall time."""
        total = self.total_ns
        if not total:
            return {}
        return {
            name: self_ns / total
            for name, self_ns in sorted(self.self_by_name().items())
            if self_ns
        }

    # -- exports -------------------------------------------------------------

    def collapsed_stacks(self) -> str:
        """Flamegraph collapsed-stack text: ``a;b;c <self_ns>`` lines."""
        lines = [
            f"{';'.join(path)} {node.self_ns}"
            for path, node in self.walk()
            if node.self_ns > 0
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self, top: int = 5) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "unit": "wall_ns",
            "total_ns": self.total_ns,
            "tree": [
                self.root.children[name].to_dict()
                for name in sorted(self.root.children)
            ],
            "hotspots": self.hotspots(top),
            "shares": self.shares(),
        }

    def write_collapsed(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.collapsed_stacks())

    def __repr__(self) -> str:
        return (
            f"WallProfiler(sections={sum(1 for _ in self.walk())}, "
            f"total_ms={self.total_ns / 1e6:.3f})"
        )


def validate_perf(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed perf export."""
    if not isinstance(doc, dict):
        raise ValueError("perf document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unknown perf schema {doc.get('schema')!r}")
    if not isinstance(doc.get("tree"), list):
        raise ValueError("perf document needs a tree list")

    def check_node(node: Any, where: str) -> None:
        if not isinstance(node, dict):
            raise ValueError(f"{where} is not an object")
        for field in ("name", "calls", "total_ns", "self_ns", "children"):
            if field not in node:
                raise ValueError(f"{where} lacks {field!r}")
        if node["total_ns"] < 0 or node["self_ns"] < 0 or node["calls"] < 0:
            raise ValueError(f"{where} has negative counts")
        for i, child in enumerate(node["children"]):
            check_node(child, f"{where}.children[{i}]")

    for i, node in enumerate(doc["tree"]):
        check_node(node, f"tree[{i}]")
    hotspots = doc.get("hotspots", [])
    if not isinstance(hotspots, list):
        raise ValueError("perf hotspots must be a list")
    for i, row in enumerate(hotspots):
        if "path" not in row or "self_ns" not in row:
            raise ValueError(f"hotspots[{i}] lacks path/self_ns")


# -- hot-path hooks ----------------------------------------------------------


class SimulatorHooks:
    """Opt-in wrappers around the simulator's known hot paths.

    Installing patches four sites in place (class attributes / module
    functions), so call sites pay the wrapper only while hooks are
    installed — with hooks uninstalled, the hot paths carry no guard at
    all. The wrapped sections:

    - ``tracer.emit``    — :meth:`SpanTracer._commit` (span ring append
      + listener fan-out, the obs layer's own overhead)
    - ``epc.touch``      — :meth:`EpcPageCache.touch` (page lookup and
      the inline LRU eviction)
    - ``epc.evict``      — :meth:`EpcPageCache.evict_enclave`
    - ``wire.encode`` / ``wire.decode`` — :func:`repro.core.wire.dumps`
      / ``loads`` (the boundary codec)
    - ``scheduler.pump`` — :meth:`SessionScheduler.step` (one
      cooperative segment; codec/EPC sections nest inside it)
    """

    def __init__(self, profiler: WallProfiler) -> None:
        self.profiler = profiler
        self._patches: List[Tuple[Any, str, Any]] = []

    @property
    def installed(self) -> bool:
        return bool(self._patches)

    def _wrap(self, owner: Any, attr: str, section: str) -> None:
        original = getattr(owner, attr)
        profiler = self.profiler

        @functools.wraps(original)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with profiler.profile_section(section):
                return original(*args, **kwargs)

        wrapper.__wrapped_by_simulator_hooks__ = True  # type: ignore[attr-defined]
        self._patches.append((owner, attr, original))
        setattr(owner, attr, wrapper)

    def install(self) -> "SimulatorHooks":
        if self.installed:
            raise RuntimeError("simulator hooks are already installed")
        # Imported here, not at module top: repro.obs must stay
        # importable below repro.costs / repro.concurrency.
        from repro.concurrency.scheduler import SessionScheduler
        from repro.core import wire
        from repro.obs.tracer import SpanTracer
        from repro.sgx.epc import EpcPageCache

        self._wrap(SpanTracer, "_commit", "tracer.emit")
        self._wrap(EpcPageCache, "touch", "epc.touch")
        self._wrap(EpcPageCache, "evict_enclave", "epc.evict")
        self._wrap(wire, "dumps", "wire.encode")
        self._wrap(wire, "loads", "wire.decode")
        self._wrap(SessionScheduler, "step", "scheduler.pump")
        return self

    def uninstall(self) -> None:
        while self._patches:
            owner, attr, original = self._patches.pop()
            setattr(owner, attr, original)

    def __enter__(self) -> "SimulatorHooks":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()


@contextmanager
def profiled(
    profiler: Optional[WallProfiler] = None,
) -> Iterator[WallProfiler]:
    """``with profiled() as prof:`` — hook the simulator hot paths for
    the duration of the block and hand back the profiler."""
    prof = profiler if profiler is not None else WallProfiler()
    hooks = SimulatorHooks(prof)
    hooks.install()
    try:
        yield prof
    finally:
        hooks.uninstall()
