"""Unified observability layer: spans, metrics, and run artifacts.

``repro.obs`` is the instrumentation plane of the reproduction. Every
cost-attribution claim the figures make (transition dominance,
in-enclave GC penalty, the EPC paging cliff) can be inspected through
three coordinated views:

- :mod:`repro.obs.tracer` — a virtual-time span tracer: nested spans
  whose timestamps come from the :class:`~repro.costs.clock.VirtualClock`,
  kept in a bounded ring buffer;
- :mod:`repro.obs.metrics` — named counters, gauges and log-bucketed
  histograms that mirror (and cross-check) the :class:`CostLedger`;
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  Perfetto / ``chrome://tracing``), JSONL event dumps, and human
  summary tables;
- :mod:`repro.obs.recorder` — a run-scoped collector that attaches
  observability to every :class:`~repro.costs.platform.Platform`
  created while it is active (how the CLI's ``--trace`` works);
- :mod:`repro.obs.artifacts` — machine-readable JSON artifacts for
  experiment tables and benchmark results;
- :mod:`repro.obs.perf` — a *wall-clock* self-profiler for the
  simulator's own hot paths (call-tree, hotspot table, flame export);
- :mod:`repro.obs.slo` — declarative SLO rules (threshold / rate /
  burn-rate) evaluated against the live metrics in virtual time,
  emitting typed alerts into the span stream;
- :mod:`repro.obs.bench` — the schema-versioned ``BENCH_perf.json``
  trajectory file (one entry per commit, regression comparisons).

Observability is **off by default**: an unconfigured platform carries a
no-op tracer and its virtual-time output is bit-identical to a build
without this package.
"""

from repro.obs.core import Observability
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.perf import SimulatorHooks, WallProfiler, profiled
from repro.obs.recorder import RunRecorder, active_recorder, recording
from repro.obs.slo import Alert, SloRule, SloWatchdog, default_rulebook
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "Alert",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "RunRecorder",
    "SimulatorHooks",
    "SloRule",
    "SloWatchdog",
    "Span",
    "SpanTracer",
    "WallProfiler",
    "active_recorder",
    "default_rulebook",
    "profiled",
    "recording",
]
