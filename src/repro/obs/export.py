"""Exporters: Chrome trace_event JSON, JSONL event dumps, summary tables.

The Chrome export follows the Trace Event Format's *complete* events
(``"ph": "X"``): one record per finished span with microsecond
timestamps derived from the virtual clock (1 virtual ns = 0.001 trace
µs). Load the file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``; each platform of a run appears as its own
process, nested spans stack within a single track because the
simulation is single-threaded per platform.

Instant events (EPC faults, GC triggers) export as ``"ph": "i"``
markers. The JSONL export is one self-describing JSON object per line —
the raw span stream for ad-hoc analysis (``jq``, pandas).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.core import Observability
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Span

#: Trace-event timestamps are microseconds; the tracer records ns.
_NS_PER_US = 1_000.0


# -- Chrome trace_event ------------------------------------------------------


def chrome_trace_events(
    events: Iterable[Span], pid: int = 1, tid: int = 1
) -> List[Dict[str, Any]]:
    """Convert a span stream into Chrome trace-event records."""
    records: List[Dict[str, Any]] = []
    for span in events:
        if not span.closed:
            continue
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.kind == "instant":
            records.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "ts": span.start_ns / _NS_PER_US,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": args,
                }
            )
        else:
            records.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_ns / _NS_PER_US,
                    "dur": span.duration_ns / _NS_PER_US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return records


def chrome_trace(
    sessions: Sequence[Tuple[str, Observability]],
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a complete Chrome trace document.

    ``sessions`` is ``[(label, observability), ...]``; each session
    becomes one trace process (pid), named via a metadata event.
    """
    trace_events: List[Dict[str, Any]] = []
    for pid, (label, obs) in enumerate(sessions, start=1):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label or f"platform-{pid}"},
            }
        )
        trace_events.extend(chrome_trace_events(obs.tracer.events(), pid=pid))
    doc: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "metadata": {
            "clock": "virtual-ns",
            "generator": "repro.obs",
        },
    }
    if metadata:
        doc["metadata"].update(metadata)
    return doc


def validate_chrome_trace(doc: Any) -> None:
    """Raise ``ValueError`` if ``doc`` is not a usable trace document.

    Used by tests and the CI smoke job; checks the envelope, per-event
    required fields, and that durations are non-negative.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document is missing the traceEvents list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        if phase not in ("X", "i", "M", "B", "E"):
            raise ValueError(f"traceEvents[{i}] has unsupported phase {phase!r}")
        if "name" not in event or "pid" not in event:
            raise ValueError(f"traceEvents[{i}] lacks name/pid")
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"traceEvents[{i}] complete event lacks ts/dur")
            if event["dur"] < 0:
                raise ValueError(f"traceEvents[{i}] has negative duration")


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Read + validate a trace file; returns the parsed document."""
    with open(path) as handle:
        doc = json.load(handle)
    validate_chrome_trace(doc)
    return doc


def write_chrome_trace(path: str, doc: Dict[str, Any]) -> None:
    validate_chrome_trace(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle)
        handle.write("\n")


# -- JSONL event dump --------------------------------------------------------


def jsonl_events(
    sessions: Sequence[Tuple[str, Observability]]
) -> Iterator[str]:
    """One JSON object per line: the raw event stream of every session."""
    for label, obs in sessions:
        for span in obs.tracer.events():
            record = span.to_dict()
            record["session"] = label
            yield json.dumps(record, default=str)


def write_jsonl(path: str, sessions: Sequence[Tuple[str, Observability]]) -> int:
    """Write the JSONL dump; returns the number of lines written."""
    lines = 0
    with open(path, "w") as handle:
        for line in jsonl_events(sessions):
            handle.write(line + "\n")
            lines += 1
    return lines


# -- human summary -----------------------------------------------------------


def span_summary(events: Iterable[Span]) -> Dict[str, Dict[str, Any]]:
    """Aggregate a span stream by name: count, total, and a latency
    histogram for percentile reporting."""
    rows: Dict[str, Dict[str, Any]] = {}
    for span in events:
        if span.kind != "span" or not span.closed:
            continue
        row = rows.get(span.name)
        if row is None:
            row = {"count": 0, "total_ns": 0.0, "hist": Histogram(span.name)}
            rows[span.name] = row
        row["count"] += 1
        row["total_ns"] += span.duration_ns
        row["hist"].observe(span.duration_ns)
    return rows


def summary_table(
    sessions: Sequence[Tuple[str, Observability]],
    metrics: Optional[MetricsRegistry] = None,
    top: Optional[int] = None,
) -> str:
    """Human-readable per-span-name table across all sessions."""
    merged: Dict[str, Dict[str, Any]] = {}
    instants = 0
    for _, obs in sessions:
        for name, row in span_summary(obs.tracer.events()).items():
            into = merged.get(name)
            if into is None:
                merged[name] = row
            else:
                into["count"] += row["count"]
                into["total_ns"] += row["total_ns"]
                into["hist"].merge(row["hist"])
        instants += sum(1 for e in obs.tracer.events() if e.kind == "instant")
    ordered = sorted(merged.items(), key=lambda kv: kv[1]["total_ns"], reverse=True)
    if top is not None:
        ordered = ordered[:top]
    lines = [
        f"{'span':<28} {'count':>10} {'total_ms':>12} "
        f"{'p50_us':>10} {'p95_us':>10} {'p99_us':>10}"
    ]
    if not ordered and not instants:
        # An empty run (no platform did observable work) still gets a
        # well-formed table rather than a bare header.
        lines.append("(no spans recorded)")
    for name, row in ordered:
        hist: Histogram = row["hist"]
        lines.append(
            f"{name:<28} {row['count']:>10} {row['total_ns'] / 1e6:>12.3f} "
            f"{hist.percentile(50) / 1e3:>10.2f} "
            f"{hist.percentile(95) / 1e3:>10.2f} "
            f"{hist.percentile(99) / 1e3:>10.2f}"
        )
    if instants:
        lines.append(f"instant events: {instants}")
    dropped = sum(obs.tracer.dropped for _, obs in sessions)
    if dropped:
        lines.append(f"ring buffer dropped {dropped} events (oldest first)")
    return "\n".join(lines)
