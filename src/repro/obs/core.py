"""Observability facade: one tracer + one metrics registry per platform.

An :class:`Observability` instance is attached to a
:class:`~repro.costs.platform.Platform` by
``platform.enable_observability()``. It owns the platform's span tracer
and metrics registry and subscribes to the platform's charge-observer
hook so every ledger charge is mirrored into metrics — which makes the
ledger/metrics cross-check exact by construction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import DEFAULT_RING_CAPACITY, SpanTracer

#: Charge categories whose per-charge latency is worth a histogram,
#: keyed by the first two dotted components ("transition.ecall", ...).
_HISTOGRAM_COMPONENTS = 2


class Observability:
    """Tracer + metrics bundle bound to one platform's virtual clock."""

    def __init__(
        self,
        clock: Any,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        mirror_charges: bool = True,
        label: str = "",
    ) -> None:
        self.tracer = SpanTracer(clock, capacity=ring_capacity)
        self.metrics = MetricsRegistry()
        self.label = label
        self._mirror_charges = mirror_charges

    # -- Platform.charge observer -------------------------------------------

    def on_charge(self, category: str, ns: float, now_ns: float) -> None:
        """Mirror one ledger charge into the metrics registry.

        Installed as a platform charge observer. Never advances the
        clock or touches the ledger; with observability enabled the
        virtual-time figures are still identical.
        """
        if not self._mirror_charges:
            return
        metrics = self.metrics
        metrics.counter(f"charge.count.{category}").inc()
        metrics.counter(f"charge.ns.{category}").inc(ns)
        head = ".".join(category.split(".")[:_HISTOGRAM_COMPONENTS])
        metrics.histogram(f"charge_ns.{head}").observe(ns)

    # -- ledger agreement ----------------------------------------------------

    def crosscheck(
        self, snapshot: Mapping[str, Tuple[int, float]], tolerance_ns: float = 1e-6
    ) -> List[str]:
        """Compare mirrored charge metrics against a ledger snapshot.

        Returns human-readable mismatch descriptions (empty = exact
        agreement). ``snapshot`` is ``CostLedger.snapshot()`` or the
        recorder's merged equivalent.
        """
        problems: List[str] = []
        for category, (count, total_ns) in snapshot.items():
            count_metric = self.metrics.get(f"charge.count.{category}")
            ns_metric = self.metrics.get(f"charge.ns.{category}")
            seen_count = count_metric.value if count_metric is not None else 0
            seen_ns = ns_metric.value if ns_metric is not None else 0.0
            if seen_count != count:
                problems.append(
                    f"{category}: ledger count {count} != metrics {seen_count:g}"
                )
            if abs(seen_ns - total_ns) > tolerance_ns:
                problems.append(
                    f"{category}: ledger {total_ns}ns != metrics {seen_ns}ns"
                )
        return problems

    # -- export views --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "metrics": self.metrics.snapshot(),
            "events": len(self.tracer),
            "dropped_events": self.tracer.dropped,
        }

    def __repr__(self) -> str:
        return (
            f"Observability(label={self.label!r}, events={len(self.tracer)}, "
            f"metrics={len(self.metrics)})"
        )
