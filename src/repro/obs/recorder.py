"""Run-scoped recorder: observability across every platform of a run.

Experiments create :class:`~repro.costs.platform.Platform` instances
deep inside their sweeps (one per figure point, sometimes), so
observability cannot be enabled by hand at each site. A
:class:`RunRecorder`, while *active*, is notified of every platform
constructed and attaches an :class:`~repro.obs.core.Observability` to
it; afterwards it can merge the sessions into one Chrome trace, one
metrics document, and one ledger snapshot.

The CLI's ``--trace``/``--metrics`` flags and the benchmark harness
both drive this. When no recorder is active, platform construction
stays untouched (the no-op default).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.core import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import DEFAULT_RING_CAPACITY

_active: Optional["RunRecorder"] = None


def active_recorder() -> Optional["RunRecorder"]:
    return _active


def activate(recorder: "RunRecorder") -> None:
    global _active
    if _active is not None:
        raise RuntimeError("a RunRecorder is already active")
    _active = recorder


def deactivate() -> None:
    global _active
    _active = None


@contextmanager
def recording(
    recorder: Optional["RunRecorder"] = None,
) -> Iterator["RunRecorder"]:
    """``with recording() as rec:`` — record every platform in the block."""
    rec = recorder or RunRecorder()
    activate(rec)
    try:
        yield rec
    finally:
        deactivate()


def attach_platform(platform: Any) -> None:
    """Platform-construction hook (called by ``Platform.__init__``)."""
    if _active is not None:
        _active.attach(platform)


class RunRecorder:
    """Collects per-platform observability for one logical run."""

    def __init__(
        self,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        slo: Optional[Any] = None,
    ) -> None:
        self.ring_capacity = ring_capacity
        #: Optional :class:`~repro.obs.slo.SloWatchdog`; when present it
        #: watches every attached platform and its verdicts join the
        #: summary output.
        self.slo = slo
        #: (label, platform, observability) per attached platform.
        self.sessions: List[Tuple[str, Any, Observability]] = []

    def attach(self, platform: Any, label: str = "") -> Observability:
        label = label or f"platform-{len(self.sessions) + 1}"
        obs = platform.enable_observability(
            ring_capacity=self.ring_capacity, label=label
        )
        if not any(existing is obs for _, _, existing in self.sessions):
            self.sessions.append((label, platform, obs))
            if self.slo is not None:
                self.slo.attach(platform, label=label)
        return obs

    # -- merged views --------------------------------------------------------

    def merged_metrics(self) -> MetricsRegistry:
        merged = MetricsRegistry()
        for _, _, obs in self.sessions:
            merged.merge(obs.metrics)
        return merged

    def merged_ledger_snapshot(self) -> Dict[str, Tuple[int, float]]:
        merged: Dict[str, Tuple[int, float]] = {}
        for _, platform, _ in self.sessions:
            for category, (count, total_ns) in platform.ledger.snapshot().items():
                base_count, base_ns = merged.get(category, (0, 0.0))
                merged[category] = (base_count + count, base_ns + total_ns)
        return dict(sorted(merged.items()))

    def crosscheck(self) -> List[str]:
        """Per-session metrics-vs-ledger agreement (empty = exact)."""
        problems: List[str] = []
        for label, platform, obs in self.sessions:
            for problem in obs.crosscheck(platform.ledger.snapshot()):
                problems.append(f"{label}: {problem}")
        return problems

    # -- exports -------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        from repro.obs import export

        return export.chrome_trace(
            [(label, obs) for label, _, obs in self.sessions],
            metadata={"sessions": len(self.sessions)},
        )

    def write_chrome_trace(self, path: str) -> None:
        from repro.obs import export

        export.write_chrome_trace(path, self.chrome_trace())

    def write_jsonl(self, path: str) -> int:
        from repro.obs import export

        return export.write_jsonl(
            path, [(label, obs) for label, _, obs in self.sessions]
        )

    def metrics_document(self) -> Dict[str, Any]:
        """Merged metrics + ledger snapshot + cross-check verdict."""
        return {
            "schema": "repro.obs/metrics@1",
            "sessions": [label for label, _, _ in self.sessions],
            "metrics": self.merged_metrics().snapshot(),
            "ledger": {
                category: {"count": count, "total_ns": total_ns}
                for category, (count, total_ns) in self.merged_ledger_snapshot().items()
            },
            "crosscheck_mismatches": self.crosscheck(),
        }

    def write_metrics(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.metrics_document(), handle, indent=2, default=str)
            handle.write("\n")

    def slo_report(self) -> Optional[Dict[str, Any]]:
        """The ``slo@1`` section, or ``None`` without a watchdog."""
        if self.slo is None:
            return None
        self.slo.evaluate_now()
        return self.slo.report()

    def summary(self, top: Optional[int] = 20) -> str:
        from repro.obs import export

        table = export.summary_table(
            [(label, obs) for label, _, obs in self.sessions],
            metrics=self.merged_metrics(),
            top=top,
        )
        if self.slo is not None:
            self.slo.evaluate_now()
            table = table.rstrip("\n") + "\n\n" + "\n".join(
                self.slo.summary_lines()
            ) + "\n"
        return table

    def __repr__(self) -> str:
        return f"RunRecorder(sessions={len(self.sessions)})"
