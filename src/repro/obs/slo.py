"""SLO watchdog: declarative rules evaluated over the live metrics.

Tuning a shielded runtime is a telemetry problem — Montsalvat's own
evaluation attributes cost to enclave transitions and EPC paging, and
the autoscaler the ROADMAP plans needs *signals*, not raw gauges. This
module turns the existing :class:`~repro.obs.metrics.MetricsRegistry`
into those signals: declarative :class:`SloRule` s evaluated in
**virtual time** while a run executes, emitting typed :class:`Alert`
events into the span stream (``slo.alert`` instants) and a
``repro.obs/slo@1`` run-artifact section.

Three rule kinds:

- ``threshold`` — the metric's current value compared against a static
  threshold (gauges: last set value; counters: running total; metric
  names may be ``fnmatch`` patterns, in which case matches are summed);
- ``rate`` — the metric's increase per **virtual second** over a
  rolling window;
- ``burn_rate`` — the ratio of the metric's window delta to the summed
  window delta of the ``denominator`` metrics (include the metric
  itself in the denominator to express a share, e.g. pool-fallback
  share of all switchless attempts).

Alerts are edge-triggered with hysteresis: a rule alerts when it
crosses from ok to breached and re-arms only after evaluating ok
again, so a saturated pool produces one alert per episode, not one per
charge. The watchdog never charges the platform and is zero-cost when
not attached.
"""

from __future__ import annotations

import json
import weakref
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

SCHEMA = "repro.obs/slo@1"

_KINDS = ("threshold", "rate", "burn_rate")
_COMPARISONS = ("gt", "lt")
_SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level objective over the metrics plane."""

    name: str
    kind: str
    metric: str
    threshold: float
    #: Breach when observed ``gt`` (above) or ``lt`` (below) threshold.
    comparison: str = "gt"
    #: ``burn_rate`` only: metric names whose window deltas are summed
    #: into the denominator.
    denominator: Tuple[str, ...] = ()
    #: ``rate``/``burn_rate``: rolling window in virtual nanoseconds.
    window_ns: float = 1_000_000.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO rule kind {self.kind!r}")
        if self.comparison not in _COMPARISONS:
            raise ValueError(f"comparison must be one of {_COMPARISONS}")
        if self.severity not in _SEVERITIES:
            raise ValueError(f"severity must be one of {_SEVERITIES}")
        if self.kind == "burn_rate" and not self.denominator:
            raise ValueError("burn_rate rules need denominator metrics")
        if self.kind in ("rate", "burn_rate") and self.window_ns <= 0:
            raise ValueError("rolling-window rules need window_ns > 0")

    def breached(self, value: float) -> bool:
        if self.comparison == "gt":
            return value > self.threshold
        return value < self.threshold

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "threshold": self.threshold,
            "comparison": self.comparison,
            "denominator": list(self.denominator),
            "window_ns": self.window_ns,
            "severity": self.severity,
            "description": self.description,
        }


@dataclass(frozen=True)
class Alert:
    """One rule breach, stamped in virtual time."""

    rule: str
    severity: str
    kind: str
    value: float
    threshold: float
    at_ns: float
    session: str = ""
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "kind": self.kind,
            "value": self.value,
            "threshold": self.threshold,
            "at_ns": self.at_ns,
            "session": self.session,
            "message": self.message,
        }


# -- metric resolution -------------------------------------------------------


def _metric_scalar(metric: Any) -> float:
    """Collapse a Counter/Gauge/Histogram into one number."""
    kind = getattr(metric, "kind", None)
    if kind == "histogram":
        return float(metric.sum)
    return float(metric.value)


#: Per-registry memo of which names match which wildcard pattern. The
#: registry is grow-only (metrics are get-or-create, never removed), so
#: ``len(registry)`` is a valid version stamp: a cached match list stays
#: correct until a new metric appears. Watchdogs re-resolve patterns on
#: every charge-driven evaluation, so without this the fnmatch scan over
#: the full name list dominates observed overload runs.
_MATCH_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _matching_names(metrics: Any, pattern: str) -> Tuple[str, ...]:
    try:
        per_registry = _MATCH_CACHE.setdefault(metrics, {})
    except TypeError:
        per_registry = None
    size = len(metrics)
    if per_registry is not None:
        cached = per_registry.get(pattern)
        if cached is not None and cached[0] == size:
            return cached[1]
    names = tuple(n for n in metrics.names() if fnmatchcase(n, pattern))
    if per_registry is not None:
        per_registry[pattern] = (size, names)
    return names


def resolve_metric(metrics: Any, pattern: str) -> Optional[float]:
    """Current value of ``pattern`` over a registry; patterns containing
    ``fnmatch`` wildcards sum every matching metric. ``None`` when
    nothing matches (the rule abstains rather than reading zero)."""
    if any(ch in pattern for ch in "*?["):
        names = _matching_names(metrics, pattern)
        if not names:
            return None
        total = 0.0
        for name in names:
            total += _metric_scalar(metrics.get(name))
        return total
    metric = metrics.get(pattern)
    if metric is None:
        return None
    return _metric_scalar(metric)


# -- per-platform evaluation state -------------------------------------------


class _RuleState:
    """Rolling samples + hysteresis latch for one rule on one platform."""

    __slots__ = ("samples", "breached", "worst")

    def __init__(self) -> None:
        #: (now_ns, value, denominator_value) samples inside the window.
        self.samples: Deque[Tuple[float, float, float]] = deque()
        self.breached = False
        self.worst: Optional[float] = None


class _Watch:
    """Live evaluation of every rule against one platform's registry."""

    def __init__(self, watchdog: "SloWatchdog", platform: Any, label: str) -> None:
        self.watchdog = watchdog
        self.platform = platform
        self.label = label
        self.obs = platform.enable_observability(label=label)
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in watchdog.rules
        }
        self._last_eval_ns = -float("inf")
        platform.add_charge_observer(self._on_charge)

    # The platform calls this after *every* charge; the comparison is
    # the entire always-on cost (virtual time is never touched).
    def _on_charge(self, category: str, ns: float, now_ns: float) -> None:
        if now_ns - self._last_eval_ns < self.watchdog.evaluate_every_ns:
            return
        self.evaluate(now_ns)

    def evaluate(self, now_ns: float) -> None:
        self._last_eval_ns = now_ns
        metrics = self.obs.metrics
        for rule in self.watchdog.rules:
            observed = self._observe(rule, metrics, now_ns)
            if observed is None:
                continue
            state = self._states[rule.name]
            if state.worst is None or self._is_worse(rule, observed, state.worst):
                state.worst = observed
            breached = rule.breached(observed)
            if breached and not state.breached:
                self.watchdog._fire(rule, observed, now_ns, self)
            state.breached = breached

    @staticmethod
    def _is_worse(rule: SloRule, value: float, worst: float) -> bool:
        return value > worst if rule.comparison == "gt" else value < worst

    def _observe(
        self, rule: SloRule, metrics: Any, now_ns: float
    ) -> Optional[float]:
        value = resolve_metric(metrics, rule.metric)
        if value is None:
            return None
        if rule.kind == "threshold":
            return value
        den_value = 0.0
        if rule.kind == "burn_rate":
            parts = [resolve_metric(metrics, name) for name in rule.denominator]
            known = [part for part in parts if part is not None]
            if not known:
                return None
            den_value = sum(known)
        state = self._states[rule.name]
        state.samples.append((now_ns, value, den_value))
        while (
            len(state.samples) > 1
            and now_ns - state.samples[0][0] > rule.window_ns
        ):
            state.samples.popleft()
        oldest_ns, oldest_value, oldest_den = state.samples[0]
        if now_ns <= oldest_ns:
            return None
        delta = value - oldest_value
        if rule.kind == "rate":
            return delta / ((now_ns - oldest_ns) / 1e9)
        den_delta = den_value - oldest_den
        if den_delta <= 0:
            return None
        return delta / den_delta

    def breached_rules(self) -> List[str]:
        return [name for name, s in self._states.items() if s.breached]

    def worst(self, rule_name: str) -> Optional[float]:
        return self._states[rule_name].worst


# -- the watchdog ------------------------------------------------------------


class SloWatchdog:
    """Evaluates a rulebook against every attached platform, in virtual
    time, and aggregates alerts + per-rule verdicts for the run."""

    def __init__(
        self,
        rules: Sequence[SloRule],
        evaluate_every_ns: float = 10_000.0,
    ) -> None:
        if evaluate_every_ns <= 0:
            raise ValueError("evaluate_every_ns must be positive")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules: Tuple[SloRule, ...] = tuple(rules)
        self.evaluate_every_ns = evaluate_every_ns
        self.alerts: List[Alert] = []
        self._watches: List[_Watch] = []

    def rule(self, name: str) -> SloRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    # -- attachment ----------------------------------------------------------

    def attach(self, platform: Any, label: str = "") -> Any:
        """Watch one platform (enables its observability if needed)."""
        watch = _Watch(self, platform, label)
        self._watches.append(watch)
        return watch

    def evaluate_now(self) -> None:
        """Force a final evaluation on every watch (end of run), so
        breaches inside the last evaluation interval are not missed."""
        for watch in self._watches:
            watch.evaluate(watch.platform.clock.now_ns)

    # -- alerting ------------------------------------------------------------

    def _fire(
        self, rule: SloRule, value: float, now_ns: float, watch: _Watch
    ) -> None:
        alert = Alert(
            rule=rule.name,
            severity=rule.severity,
            kind=rule.kind,
            value=value,
            threshold=rule.threshold,
            at_ns=now_ns,
            session=watch.label or watch.obs.label,
            message=rule.description
            or f"{rule.metric} {rule.comparison} {rule.threshold}",
        )
        self.alerts.append(alert)
        # The typed event goes into the span stream too, so the alert is
        # visible in --trace / --events exports next to the spans that
        # caused it.
        watch.obs.tracer.instant("slo.alert", attrs=alert.to_dict())

    # -- verdicts + artifact -------------------------------------------------

    def verdicts(self) -> Dict[str, Dict[str, Any]]:
        """Per-rule outcome over the whole run: ``breached`` if the rule
        alerted on any watched platform (or is breached right now)."""
        out: Dict[str, Dict[str, Any]] = {}
        alerted = {alert.rule for alert in self.alerts}
        for rule in self.rules:
            live = any(
                rule.name in watch.breached_rules() for watch in self._watches
            )
            worsts = [
                watch.worst(rule.name)
                for watch in self._watches
                if watch.worst(rule.name) is not None
            ]
            worst: Optional[float] = None
            if worsts:
                worst = max(worsts) if rule.comparison == "gt" else min(worsts)
            out[rule.name] = {
                "status": "breached" if (rule.name in alerted or live) else "ok",
                "alerts": sum(1 for a in self.alerts if a.rule == rule.name),
                "worst": worst,
                "threshold": rule.threshold,
                "severity": rule.severity,
            }
        return out

    def report(self) -> Dict[str, Any]:
        """The ``slo@1`` run-artifact section."""
        return {
            "schema": SCHEMA,
            "rules": [rule.to_dict() for rule in self.rules],
            "alerts": [alert.to_dict() for alert in self.alerts],
            "verdicts": self.verdicts(),
        }

    def summary_lines(self) -> List[str]:
        """Human verdict block for ``--obs-summary``."""
        verdicts = self.verdicts()
        lines = [
            f"SLO verdicts ({len(self.rules)} rules, "
            f"{len(self.alerts)} alerts):"
        ]
        for name, verdict in sorted(verdicts.items()):
            status = "BREACHED" if verdict["status"] == "breached" else "ok"
            detail = ""
            if verdict["worst"] is not None:
                rule = self.rule(name)
                op = ">" if rule.comparison == "gt" else "<"
                detail = (
                    f"  worst {verdict['worst']:.4g} "
                    f"(threshold {op} {verdict['threshold']:g}, "
                    f"{verdict['severity']})"
                )
            lines.append(f"  {name:<24} {status:<8}{detail}")
        return lines

    def __repr__(self) -> str:
        return (
            f"SloWatchdog(rules={len(self.rules)}, "
            f"watches={len(self._watches)}, alerts={len(self.alerts)})"
        )


def validate_slo(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed slo@1 section."""
    if not isinstance(doc, dict):
        raise ValueError("slo document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unknown slo schema {doc.get('schema')!r}")
    rules = doc.get("rules")
    if not isinstance(rules, list):
        raise ValueError("slo document needs a rules list")
    for i, rule in enumerate(rules):
        for field_name in ("name", "kind", "metric", "threshold"):
            if field_name not in rule:
                raise ValueError(f"rules[{i}] lacks {field_name!r}")
        if rule["kind"] not in _KINDS:
            raise ValueError(f"rules[{i}] has unknown kind {rule['kind']!r}")
    alerts = doc.get("alerts")
    if not isinstance(alerts, list):
        raise ValueError("slo document needs an alerts list")
    rule_names = {rule["name"] for rule in rules}
    for i, alert in enumerate(alerts):
        for field_name in ("rule", "value", "threshold", "at_ns", "severity"):
            if field_name not in alert:
                raise ValueError(f"alerts[{i}] lacks {field_name!r}")
        if alert["rule"] not in rule_names:
            raise ValueError(f"alerts[{i}] references unknown rule {alert['rule']!r}")
    verdicts = doc.get("verdicts")
    if not isinstance(verdicts, dict):
        raise ValueError("slo document needs a verdicts mapping")
    for name, verdict in verdicts.items():
        if name not in rule_names:
            raise ValueError(f"verdict for unknown rule {name!r}")
        if verdict.get("status") not in ("ok", "breached"):
            raise ValueError(f"verdict {name!r} has bad status")


def load_slo(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        doc = json.load(handle)
    validate_slo(doc)
    return doc


def write_slo(path: str, doc: Dict[str, Any]) -> None:
    validate_slo(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, default=str)
        handle.write("\n")


# -- the starter rulebook ----------------------------------------------------

#: Usable EPC of the paper testbed (§6.1) in 4 KiB pages; the default
#: residency rule warns at 90% of it. Pass ``epc_quota_pages`` for runs
#: with an artificially tight budget (the scaling ablation's 48 pages).
_DEFAULT_EPC_PAGES = int(93.5 * 1024 * 1024) // 4096


def default_rulebook(
    epc_quota_pages: Optional[int] = None,
    fallback_share: float = 0.5,
    crossing_rate_per_s: float = 100_000.0,
    recovery_budget_ns: float = 1_000_000.0,
    window_ns: float = 100_000.0,
    admission_queue_depth: float = 8.0,
    shed_share: float = 0.05,
    migration_budget_ns: float = 5_000_000.0,
) -> Tuple[SloRule, ...]:
    """The signals the autoscaler consumes, as a rulebook.

    - **pool-fallback-burn** — share of switchless attempts degraded to
      hardware transitions over the rolling window; a saturated worker
      pool is the scale-up signal.
    - **epc-residency** — resident EPC pages near the (partitioned)
      quota; the paging-cliff early warning.
    - **crossing-rate** — ecalls per virtual second; crossing-dominated
      phases are batching/offload candidates.
    - **recovery-budget** — virtual nanoseconds spent in
      reinit/re-attest/restore; a flapping enclave blows this budget.
    - **admission-queue** — open-loop admission queue depth; sustained
      backlog means offered load outruns provisioned capacity.
    - **shed-burn** — share of offered requests shed by the admission
      layer over the rolling window; graceful degradation engaged.
    - **migration-budget** — virtual nanoseconds spent live-migrating
      keys between shards; an autoscaler that flaps blows this budget.

    Rules over metrics a run never emits simply abstain (see
    :meth:`SloRule.resolve_metric`), so the traffic rules are free to
    ride in the default book.
    """
    quota = epc_quota_pages if epc_quota_pages is not None else _DEFAULT_EPC_PAGES
    return (
        SloRule(
            name="pool-fallback-burn",
            kind="burn_rate",
            metric="concurrency.pool_fallbacks",
            denominator=("concurrency.pool_fallbacks", "sgx.switchless_calls"),
            threshold=fallback_share,
            window_ns=window_ns,
            severity="critical",
            description=(
                "switchless worker pool saturated: fallback share of "
                "pool attempts over the rolling window"
            ),
        ),
        SloRule(
            name="epc-residency",
            kind="threshold",
            metric="epc.resident_pages",
            threshold=0.9 * quota,
            severity="warning",
            description="EPC residency within 10% of the page quota",
        ),
        SloRule(
            name="crossing-rate",
            kind="rate",
            metric="sgx.ecalls",
            threshold=crossing_rate_per_s,
            window_ns=window_ns,
            severity="info",
            description="enclave crossing rate per virtual second",
        ),
        SloRule(
            name="recovery-budget",
            kind="threshold",
            metric="charge.ns.recovery.*",
            threshold=recovery_budget_ns,
            severity="warning",
            description="virtual time spent rebuilding lost enclaves",
        ),
        SloRule(
            name="admission-queue",
            kind="threshold",
            metric="traffic.admission.queue_depth",
            threshold=admission_queue_depth,
            severity="warning",
            description=(
                "open-loop admission queue backlog: offered load is "
                "outrunning provisioned capacity"
            ),
        ),
        SloRule(
            name="shed-burn",
            kind="burn_rate",
            metric="traffic.shed_total",
            denominator=("traffic.offered",),
            threshold=shed_share,
            window_ns=window_ns,
            severity="critical",
            description=(
                "share of offered requests shed (queue-full, deadline "
                "or backpressure) over the rolling window"
            ),
        ),
        SloRule(
            name="migration-budget",
            kind="threshold",
            metric="charge.ns.migration.*",
            threshold=migration_budget_ns,
            severity="warning",
            description=(
                "virtual time spent live-migrating shard state; a "
                "flapping autoscaler blows this budget"
            ),
        ),
    )
