"""Metrics registry: counters, gauges and log-bucketed histograms.

Metrics complement the :class:`~repro.costs.ledger.CostLedger`: the
ledger is the *authoritative* virtual-time accounting, while metrics
add shapes the ledger cannot express — call-rate counters kept by the
instrumentation sites themselves, high-water gauges, and latency
distributions (p50/p95/p99 over virtual nanoseconds) in geometric
buckets. :meth:`Observability.crosscheck` verifies the two stay in
exact agreement for every charged category.

Histograms bucket by powers of two: ``observe(v)`` lands ``v`` in
bucket ``floor(log2(v))``, covering ``[2^i, 2^(i+1))``. Percentiles are
reconstructed by linear interpolation inside the crossing bucket and
clamped to the exact observed min/max, so the error is bounded by the
bucket width (a factor of two) and is zero at the extremes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing count (or sum, for float increments)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-set value with high/low watermarks."""

    __slots__ = ("name", "value", "max_seen", "min_seen")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.max_seen: Optional[float] = None
        self.min_seen: Optional[float] = None

    def set(self, value: Number) -> None:
        self.value = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value

    def add(self, delta: Number) -> None:
        self.set(self.value + delta)

    def merge(self, other: "Gauge") -> None:
        # Merging run segments: keep the widest watermarks, last value wins.
        self.value = other.value
        for extreme, pick in (("max_seen", max), ("min_seen", min)):
            mine, theirs = getattr(self, extreme), getattr(other, extreme)
            if theirs is not None:
                setattr(self, extreme, theirs if mine is None else pick(mine, theirs))

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "max": self.max_seen, "min": self.min_seen}


class Histogram:
    """Power-of-two log-bucketed distribution of non-negative values."""

    __slots__ = ("name", "count", "sum", "min", "max", "zeros", "_buckets")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zeros = 0  # values in [0, 1) get their own underflow bucket
        self._buckets: Dict[int, int] = {}

    @staticmethod
    def bucket_index(value: float) -> int:
        """Index i such that value lies in [2^i, 2^(i+1)).

        Computed via ``frexp`` rather than ``floor(log2(v))``: log2 of a
        float just *below* an exact power of two (e.g.
        ``nextafter(2**30, 0)``) rounds up to the integer, so the floor
        lands the value one bucket too high. ``frexp`` returns mantissa
        in [0.5, 1) and the exact binary exponent, so ``exponent - 1``
        is ``floor(log2(v))`` for every positive float.
        """
        _, exponent = math.frexp(value)
        return exponent - 1

    @staticmethod
    def bucket_bounds(index: int) -> Tuple[float, float]:
        return (2.0 ** index, 2.0 ** (index + 1))

    def observe(self, value: Number) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} takes non-negative values")
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value < 1.0:
            self.zeros += 1
            return
        index = self.bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        target = (p / 100.0) * self.count
        cumulative = float(self.zeros)
        if target <= cumulative:
            # Inside the underflow bucket [0, 1): interpolate linearly.
            fraction = target / cumulative if cumulative else 0.0
            return self._clamp(fraction)
        for index in sorted(self._buckets):
            in_bucket = self._buckets[index]
            if target <= cumulative + in_bucket:
                lo, hi = self.bucket_bounds(index)
                fraction = (target - cumulative) / in_bucket
                return self._clamp(lo + fraction * (hi - lo))
            cumulative += in_bucket
        return self.max

    def _clamp(self, value: float) -> float:
        assert self.min is not None and self.max is not None
        return min(self.max, max(self.min, value))

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.sum += other.sum
        self.zeros += other.zeros
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
            "underflow": self.zeros,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of named metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same-named metrics must share kind)."""
        for name, metric in other._metrics.items():
            mine = self._get(name, type(metric))
            mine.merge(metric)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready view: name -> {"kind": ..., **metric fields}."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"kind": metric.kind}
            entry.update(metric.to_dict())
            out[name] = entry
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
