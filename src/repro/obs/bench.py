"""BENCH trajectory file: wall-clock throughput across commits.

``BENCH_perf.json`` lives at the repository root and is **tracked** —
it is the repo's performance memory. Each run of ``python -m repro
perf`` appends one entry keyed by commit (re-running on the same commit
replaces that commit's entry rather than growing the file), so the
trajectory reads as one line per landed change and CI can gate on
"no entry regressed more than *tolerance* versus the previous one".

Entries are wall-clock measurements, so they are machine-dependent;
the *virtual-time fingerprint* inside each workload is not — it must
be identical across runs and machines for the same commit, and the CI
perf-smoke job asserts exactly that by running the suite twice.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

SCHEMA = "repro.obs/bench@1"

#: Default trajectory file name, at the repo root (tracked in git).
DEFAULT_PATH = "BENCH_perf.json"


def empty_doc() -> Dict[str, Any]:
    return {"schema": SCHEMA, "entries": []}


def validate_bench(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed trajectory."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unknown bench schema {doc.get('schema')!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise ValueError("bench document needs an entries list")
    for i, entry in enumerate(entries):
        for field in ("commit", "mode", "workloads"):
            if field not in entry:
                raise ValueError(f"entries[{i}] lacks {field!r}")
        workloads = entry["workloads"]
        if not isinstance(workloads, dict) or not workloads:
            raise ValueError(f"entries[{i}] needs a non-empty workloads map")
        for name, workload in workloads.items():
            for field in (
                "requests_per_sec",
                "p50_ms",
                "p95_ms",
                "hotspots",
                "virtual_fingerprint",
            ):
                if field not in workload:
                    raise ValueError(
                        f"entries[{i}].workloads[{name!r}] lacks {field!r}"
                    )
            if workload["requests_per_sec"] <= 0:
                raise ValueError(
                    f"entries[{i}].workloads[{name!r}] has non-positive "
                    "requests_per_sec"
                )


def load_bench(path: str) -> Dict[str, Any]:
    """Read a trajectory file; a missing file is an empty trajectory."""
    if not os.path.exists(path):
        return empty_doc()
    with open(path) as handle:
        doc = json.load(handle)
    validate_bench(doc)
    return doc


def write_bench(path: str, doc: Dict[str, Any]) -> None:
    validate_bench(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")


def append_entry(
    doc: Dict[str, Any], entry: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Append ``entry``; return the entry it should be compared against.

    The comparison baseline is the latest prior entry with the same
    ``mode`` (``quick`` entries are shorter runs and must not be judged
    against ``full`` ones). An existing entry for the same commit+mode
    is replaced in place, so re-running on a dirty tree converges
    instead of stacking — the baseline is then whatever preceded it.
    """
    entries: List[Dict[str, Any]] = doc["entries"]
    doc["entries"] = [
        existing
        for existing in entries
        if not (
            existing["commit"] == entry["commit"]
            and existing["mode"] == entry["mode"]
        )
    ]
    previous = None
    for existing in doc["entries"]:
        if existing["mode"] == entry["mode"]:
            previous = existing
    doc["entries"].append(entry)
    return previous


def compare(
    entry: Dict[str, Any],
    previous: Optional[Dict[str, Any]],
    tolerance: float,
    floor_rps: float = 0.0,
) -> List[str]:
    """Regressions of ``entry`` vs ``previous`` and vs the floor.

    Returns human-readable violation strings (empty = pass). A workload
    regresses when its requests/sec drops more than ``tolerance``
    (fraction, e.g. 0.25) below the previous entry's; every workload
    must also clear the absolute ``floor_rps``. New workloads with no
    previous measurement only face the floor.
    """
    problems: List[str] = []
    for name, workload in sorted(entry["workloads"].items()):
        rps = workload["requests_per_sec"]
        if rps < floor_rps:
            problems.append(
                f"{name}: {rps:.0f} req/s below the floor of "
                f"{floor_rps:.0f} req/s"
            )
        if previous is None:
            continue
        base = previous["workloads"].get(name)
        if base is None:
            continue
        base_rps = base["requests_per_sec"]
        allowed = base_rps * (1.0 - tolerance)
        if rps < allowed:
            problems.append(
                f"{name}: {rps:.0f} req/s is a "
                f"{(1.0 - rps / base_rps) * 100.0:.1f}% regression vs "
                f"{base_rps:.0f} req/s at {previous['commit'][:12]} "
                f"(tolerance {tolerance * 100.0:.0f}%)"
            )
    return problems


def fingerprint_drift(
    entry: Dict[str, Any], previous: Optional[Dict[str, Any]]
) -> List[str]:
    """Workloads whose *virtual* fingerprint changed since ``previous``.

    Drift is not an error — a PR that legitimately changes costs moves
    the fingerprint — but it is always worth surfacing, because an
    *unintended* drift means the wall-clock comparison is no longer
    apples-to-apples.
    """
    if previous is None:
        return []
    drifted = []
    for name, workload in sorted(entry["workloads"].items()):
        base = previous["workloads"].get(name)
        if base is None:
            continue
        if workload["virtual_fingerprint"] != base["virtual_fingerprint"]:
            drifted.append(
                f"{name}: virtual fingerprint changed since "
                f"{previous['commit'][:12]} (simulated work differs; "
                "wall-clock deltas include that change)"
            )
    return drifted
