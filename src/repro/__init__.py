"""Montsalvat (Middleware '21) reproduced in Python.

Partition annotated classes into trusted (in-enclave) and untrusted
components with an RMI-like proxy/mirror runtime, synchronized garbage
collection and a shim libc — on top of simulated SGX and GraalVM
native-image substrates with a calibrated virtual-time cost model.

Quickstart::

    from repro import Partitioner, trusted, untrusted

    @trusted
    class Account: ...

    @untrusted
    class Person: ...

    app = Partitioner().partition([Account, Person])
    with app.start() as session:
        ...  # annotated classes now route through the enclave

See README.md for the full tour, DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.core import (
    Partitioner,
    PartitionOptions,
    Side,
    current_context,
    neutral,
    trusted,
    untrusted,
)
from repro.costs import Platform, fresh_platform

__version__ = "1.0.0"

__all__ = [
    "Partitioner",
    "PartitionOptions",
    "Side",
    "current_context",
    "neutral",
    "trusted",
    "untrusted",
    "Platform",
    "fresh_platform",
    "__version__",
]
