"""Sealed storage and transparent field protection.

§5.1 argues that encapsulated trusted classes make it "easier to
control access to sensitive class fields by applying techniques such as
transparent encryption/decryption at the level of these public
methods". This module supplies that machinery:

- :class:`SealingService` — SGX sealing analog: authenticated
  encryption bound to the enclave's measurement (MRENCLAVE policy), so
  sealed blobs only open inside the same enclave build;
- :func:`transparent_seal` — wraps a trusted class's public getter so
  values leaving the enclave are sealed and must be unsealed by an
  authorised reader.

The crypto is an HMAC-keystream construction (no external crypto
dependency) with an authentication tag; tampering and cross-enclave
unsealing are rejected.
"""

from __future__ import annotations

import hashlib
import hmac
import pickle
import secrets
from dataclasses import dataclass
from typing import Any

from repro.errors import AttestationError, SgxError
from repro.sgx.enclave import Enclave

#: AES-GCM-class cost per sealed byte, charged to the enclave context.
#: Public so other layers pricing "sealed-equivalent" work (e.g. secure
#: values crossing the boundary, repro.core.secure) stay in sync.
SEAL_BYTE_CYCLES = 2.5
SEAL_FIXED_CYCLES = 3_000.0

_SEAL_BYTE_CYCLES = SEAL_BYTE_CYCLES
_SEAL_FIXED_CYCLES = SEAL_FIXED_CYCLES


@dataclass(frozen=True)
class SealedBlob:
    """Ciphertext + nonce + authentication tag."""

    ciphertext: bytes
    nonce: bytes
    tag: bytes

    @property
    def size(self) -> int:
        return len(self.ciphertext) + len(self.nonce) + len(self.tag)


class SealingService:
    """EGETKEY/seal analog for one enclave."""

    def __init__(self, enclave: Enclave, platform_secret: bytes = b"") -> None:
        self.enclave = enclave
        # The sealing key derives from the CPU's fuse key and the
        # enclave measurement (MRENCLAVE policy).
        fuse = platform_secret or b"simulated-cpu-fuse-key"
        self._key = hashlib.sha256(
            fuse + enclave.measurement.encode("utf-8")
        ).digest()

    # -- primitives ------------------------------------------------------------

    def seal(self, value: Any) -> SealedBlob:
        """Seal any picklable value; charges AES-class cost."""
        self.enclave.require_usable()
        plaintext = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        nonce = secrets.token_bytes(16)
        ciphertext = _keystream_xor(self._key, nonce, plaintext)
        tag = hmac.new(self._key, nonce + ciphertext, hashlib.sha256).digest()
        self.enclave.platform.charge_cycles(
            "sgx.seal", _SEAL_FIXED_CYCLES + len(plaintext) * _SEAL_BYTE_CYCLES
        )
        return SealedBlob(ciphertext=ciphertext, nonce=nonce, tag=tag)

    def unseal(self, blob: SealedBlob) -> Any:
        """Unseal; rejects tampering and foreign-enclave blobs."""
        self.enclave.require_usable()
        expected = hmac.new(
            self._key, blob.nonce + blob.ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, blob.tag):
            raise AttestationError(
                "unsealing failed: blob was tampered with or sealed by a "
                "different enclave build"
            )
        plaintext = _keystream_xor(self._key, blob.nonce, blob.ciphertext)
        self.enclave.platform.charge_cycles(
            "sgx.unseal", _SEAL_FIXED_CYCLES + len(plaintext) * _SEAL_BYTE_CYCLES
        )
        return pickle.loads(plaintext)


def transparent_seal(service: SealingService):
    """Decorate a trusted class's public getter so its return value
    leaves the enclave sealed (§5.1's transparent encryption)."""

    def decorator(getter):
        def sealed_getter(self, *args, **kwargs) -> SealedBlob:
            return service.seal(getter(self, *args, **kwargs))

        sealed_getter.__name__ = getter.__name__
        sealed_getter.__doc__ = (
            f"Sealed variant of {getter.__name__}: returns a SealedBlob "
            "only the sealing enclave can open."
        )
        return sealed_getter

    return decorator


def _keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """CTR-style keystream XOR built from SHA-256 blocks."""
    if not data:
        return b""
    blocks = []
    counter = 0
    while len(blocks) * 32 < len(data):
        blocks.append(
            hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        )
        counter += 1
    keystream = b"".join(blocks)[: len(data)]
    return bytes(a ^ b for a, b in zip(data, keystream))
