"""Priced DMA channel between the enclave and an accelerator device.

The ``repro offload`` ablation ships kernel working sets out of the
enclave to a PCIe-attached accelerator instead of paying in-enclave
execution (MEE on every cache miss, EPC paging on working-set overflow,
native-image GC on every allocated byte). This module prices the data
path of that trade:

- **ship**: the enclave encodes the working set once into pinned
  untrusted pages (the same staging write the RMI arena uses), MACs it
  so the device-visible bytes are integrity-protected, then kicks a
  descriptor-ring DMA to device memory;
- **launch**: doorbell + argument marshalling on the device;
- **fetch**: the device DMAs results back into pinned pages and the
  enclave MAC-verifies them before trusting a byte.

All charges land under ``sgx.dma.*`` so the ledger decomposes an
offloaded run the same way it decomposes a crossing. The channel only
prices the transfer; what the kernel costs *on the device* is the
experiment's concern (:mod:`repro.experiments.offload_exp`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError


@dataclass
class DmaStats:
    """Transfer accounting for one channel."""

    transfers: int = 0
    launches: int = 0
    bytes_to_device: int = 0
    bytes_from_device: int = 0

    @property
    def bytes_moved(self) -> int:
        return self.bytes_to_device + self.bytes_from_device


class DmaChannel:
    """One priced DMA queue pair between an enclave and a device."""

    def __init__(self, platform: Any, name: str = "dma0") -> None:
        self.platform = platform
        self.name = name
        self.stats = DmaStats()

    # -- the data path --------------------------------------------------------

    def ship_to_device(self, nbytes: int) -> float:
        """Enclave -> device: stage into pinned pages, MAC, DMA out."""
        ns = self._stage(nbytes)
        ns += self._mac(nbytes)
        ns += self._dma(nbytes, "out")
        self.stats.transfers += 1
        self.stats.bytes_to_device += nbytes
        self._count("dma.bytes_to_device", nbytes)
        return ns

    def fetch_from_device(self, nbytes: int) -> float:
        """Device -> enclave: DMA into pinned pages, MAC-verify, read
        in place (the write into pinned memory is the device's DMA, so
        the host pays no staging copy on this direction)."""
        ns = self._dma(nbytes, "in")
        ns += self._mac(nbytes)
        self.stats.transfers += 1
        self.stats.bytes_from_device += nbytes
        self._count("dma.bytes_from_device", nbytes)
        return ns

    def launch(self, kernel: str) -> float:
        """Doorbell + kernel-argument marshalling for one device launch."""
        offload = self.platform.cost_model.offload
        self.stats.launches += 1
        self._count("dma.launches", 1)
        return self.platform.charge_cycles(
            f"sgx.dma.launch.{kernel}", offload.launch_fixed_cycles
        )

    # -- pricing internals ----------------------------------------------------

    def _stage(self, nbytes: int) -> float:
        arena = self.platform.cost_model.arena
        return self.platform.charge_cycles(
            "sgx.dma.stage",
            arena.stage_fixed_cycles + nbytes * arena.stage_byte_cycles,
        )

    def _mac(self, nbytes: int) -> float:
        arena = self.platform.cost_model.arena
        return self.platform.charge_cycles(
            "sgx.dma.mac",
            arena.mac_fixed_cycles + nbytes * arena.mac_byte_cycles,
        )

    def _dma(self, nbytes: int, direction: str) -> float:
        if nbytes < 0:
            raise ConfigurationError(f"negative DMA transfer: {nbytes}")
        offload = self.platform.cost_model.offload
        return self.platform.charge_cycles(
            f"sgx.dma.{direction}",
            offload.dma_setup_cycles + nbytes * offload.dma_byte_cycles,
        )

    def _count(self, metric: str, amount: int) -> None:
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter(metric).inc(amount)

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"DmaChannel(name={self.name!r}, transfers={stats.transfers}, "
            f"moved={stats.bytes_moved}B)"
        )
