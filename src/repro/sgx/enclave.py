"""Enclave lifecycle: creation, measurement, heaps and destruction.

An enclave is created from a signed shared object (see
:mod:`repro.sgx.sdk`), is cryptographically measured at load time, owns
an in-enclave heap and stack (§6.1 uses 4 GB heap / 8 MB stack
enclaves), and exposes an execution context every trusted operation is
charged against.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.costs.machine import MB
from repro.costs.platform import Platform
from repro.errors import EnclaveError, EnclaveLostError
from repro.runtime.context import ExecutionContext, Location, RuntimeKind
from repro.runtime.heap import SimHeap

_enclave_ids = itertools.count(1)


class EnclaveState(enum.Enum):
    """Lifecycle states of an enclave.

    ``CREATED → INITIALIZED`` via :meth:`Enclave.initialize`;
    ``INITIALIZED → LOST`` via :meth:`Enclave.mark_lost` (power
    transition / injected crash); ``LOST → INITIALIZED`` via the priced
    :meth:`Enclave.reinitialize`; any non-destroyed state →
    ``DESTROYED`` via :meth:`Enclave.destroy` (terminal).
    """

    CREATED = "created"
    INITIALIZED = "initialized"
    #: ``SGX_ERROR_ENCLAVE_LOST``: the EPC contents are gone but the
    #: enclave can be rebuilt from its (unchanged) signed image.
    LOST = "lost"
    DESTROYED = "destroyed"


@dataclass(frozen=True)
class EnclaveConfig:
    """Enclave build/launch parameters (paper defaults from §6.1)."""

    heap_max_bytes: int = 4 * 1024 * MB
    stack_max_bytes: int = 8 * MB
    tcs_count: int = 8
    debug: bool = False


@dataclass
class EnclaveContents:
    """What gets loaded (and measured) into the enclave at creation."""

    image_name: str
    code_bytes: bytes
    config: EnclaveConfig = field(default_factory=EnclaveConfig)

    def measure(self) -> str:
        """MRENCLAVE analog: SHA-256 over code and launch parameters."""
        digest = hashlib.sha256()
        digest.update(self.image_name.encode("utf-8"))
        digest.update(self.code_bytes)
        digest.update(str(self.config.heap_max_bytes).encode())
        digest.update(str(self.config.stack_max_bytes).encode())
        return digest.hexdigest()


class Enclave:
    """A live enclave instance."""

    def __init__(
        self,
        platform: Platform,
        contents: EnclaveContents,
        runtime: RuntimeKind = RuntimeKind.NATIVE_IMAGE,
    ) -> None:
        self.enclave_id = next(_enclave_ids)
        self.platform = platform
        self.contents = contents
        self.config = contents.config
        self.measurement = contents.measure()
        self.state = EnclaveState.CREATED
        self.ctx = ExecutionContext(
            platform, Location.ENCLAVE, runtime=runtime, label=contents.image_name
        )
        self.heap: Optional[SimHeap] = None
        #: Ecalls currently executing inside this enclave.
        self.active_ecalls = 0
        #: How many times this enclave was rebuilt after a loss.
        self.rebuilds = 0

    # -- lifecycle -----------------------------------------------------------

    def initialize(self) -> None:
        """EINIT analog: charge load+measure cost and set up the heap."""
        if self.state is not EnclaveState.CREATED:
            raise EnclaveError(f"cannot initialize enclave in state {self.state}")
        # Loading and measuring every page of the image (EADD+EEXTEND).
        load_bytes = len(self.contents.code_bytes)
        self.platform.charge_cycles(
            "sgx.enclave.load", load_bytes * 1.2 + 500_000.0
        )
        self.heap = SimHeap(
            self.ctx, max_bytes=self.config.heap_max_bytes, name="enclave"
        )
        self.state = EnclaveState.INITIALIZED

    def mark_lost(self) -> None:
        """Power-transition/crash analog: EPC contents vanish.

        The enclave can no longer execute; in-flight ecalls are torn
        down (their TCS state is gone with the EPC). Idempotent from
        LOST; a destroyed enclave cannot be lost.
        """
        if self.state is EnclaveState.LOST:
            return
        if self.state is EnclaveState.DESTROYED:
            raise EnclaveError("cannot lose a destroyed enclave")
        if self.state is not EnclaveState.INITIALIZED:
            raise EnclaveError(
                f"cannot lose enclave in state {self.state.value}"
            )
        self.state = EnclaveState.LOST
        self.heap = None
        self.active_ecalls = 0

    def reinitialize(self) -> None:
        """Rebuild a LOST enclave from its signed image.

        Re-runs the EADD+EEXTEND loading pass (same price as
        :meth:`initialize`) and re-derives the measurement — the image
        is unchanged, so MRENCLAVE (and hence sealing keys) survive
        the loss. Callers still must re-attest before trusting it.
        """
        if self.state is not EnclaveState.LOST:
            raise EnclaveError(
                f"can only reinitialize a LOST enclave (state={self.state.value})"
            )
        load_bytes = len(self.contents.code_bytes)
        self.platform.charge_cycles(
            "sgx.enclave.reload", load_bytes * 1.2 + 500_000.0
        )
        self.measurement = self.contents.measure()
        self.heap = SimHeap(
            self.ctx, max_bytes=self.config.heap_max_bytes, name="enclave"
        )
        self.rebuilds += 1
        self.state = EnclaveState.INITIALIZED

    def destroy(self) -> None:
        if self.state is EnclaveState.DESTROYED:
            raise EnclaveError("enclave already destroyed")
        if self.active_ecalls > 0:
            raise EnclaveError(
                f"cannot destroy enclave with {self.active_ecalls} active "
                "ecall(s); wait for them to return"
            )
        self.state = EnclaveState.DESTROYED
        self.heap = None

    def begin_call(self) -> None:
        self.active_ecalls += 1

    def end_call(self) -> None:
        # mark_lost zeroes the counter while calls are unwinding, so
        # the paired decrement must not push it negative.
        if self.active_ecalls > 0:
            self.active_ecalls -= 1

    def require_usable(self) -> None:
        """Raise unless the enclave can execute ecalls right now."""
        if self.state is EnclaveState.LOST:
            raise EnclaveLostError(
                f"enclave {self.contents.image_name!r} is LOST; "
                "reinitialize() before calling into it",
                phase="pre",
                transient=False,
            )
        if self.state is not EnclaveState.INITIALIZED:
            raise EnclaveError(
                f"enclave {self.contents.image_name!r} not usable "
                f"(state={self.state.value})"
            )

    # -- introspection ---------------------------------------------------------

    @property
    def usable(self) -> bool:
        return self.state is EnclaveState.INITIALIZED

    def __repr__(self) -> str:
        return (
            f"Enclave(id={self.enclave_id}, image={self.contents.image_name!r}, "
            f"state={self.state.value})"
        )
