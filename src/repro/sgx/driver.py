"""SGX kernel driver model: services EPC faults and charges swap costs.

The driver owns the machine-wide :class:`EpcPageCache` and converts
page faults (EWB/ELDU swaps between EPC and DRAM) into virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.costs.platform import Platform
from repro.sgx.epc import EpcPageCache, EpcStats


@dataclass
class DriverStats:
    """Driver-level accounting."""

    faults_serviced: int = 0
    total_ns: float = 0.0
    #: Injected hostile-tenant pressure spikes serviced.
    pressure_spikes: int = 0
    pressure_faults: int = 0


#: Enclave id charged with injected pressure: a hostile co-tenant that
#: competes for EPC but is not any enclave under test.
_PRESSURE_TENANT_ID = -1


class SgxDriver:
    """Linux SGX driver (isgx/in-kernel) paging model, version 2.11-ish."""

    def __init__(self, platform: Platform, version: str = "2.11") -> None:
        self.platform = platform
        self.version = version
        self.epc = EpcPageCache(
            capacity_bytes=platform.spec.epc_usable_bytes,
            page_bytes=platform.spec.page_bytes,
        )
        self.stats = DriverStats()
        self._pressure_cursor = 0
        #: Owner ids with an EPC budget carved out via partition_epc.
        self._partition_owners: Sequence[int] = ()

    def partition_epc(
        self, owners: Sequence[int], total_pages: Optional[int] = None
    ) -> Dict[int, int]:
        """Split an EPC page budget evenly across ``owners``.

        Each owner (an enclave id or a synthetic shard-tenant id) gets
        ``total_pages // len(owners)`` resident pages; at its quota it
        evicts its own LRU page rather than a co-tenant's. With
        ``total_pages=None`` the whole usable EPC is split.
        """
        quotas = self.epc.partition(owners, total_pages=total_pages)
        self._partition_owners = tuple(owners)
        return quotas

    def access(self, enclave_id: int, start_byte: int, nbytes: int) -> float:
        """Charge an enclave's memory access against the EPC; returns ns."""
        faults_mod = self.platform.faults
        if faults_mod is not None:
            spike_pages = faults_mod.epc_pressure(self.platform.clock.now_ns)
            if spike_pages:
                self._pressure_spike(spike_pages)
        evictions_before = self.epc.stats.evictions
        faults = self.epc.touch_range(enclave_id, start_byte, nbytes)
        if not faults:
            return 0.0
        cycles = faults * self.platform.cost_model.memory.epc_page_fault_cycles
        obs = self.platform.obs
        if obs is None:
            ns = self.platform.charge_cycles("sgx.driver.page_fault", cycles)
        else:
            evictions = self.epc.stats.evictions - evictions_before
            with obs.tracer.span(
                "epc.page_fault",
                attrs={
                    "enclave": enclave_id,
                    "faults": faults,
                    "evictions": evictions,
                },
            ):
                ns = self.platform.charge_cycles("sgx.driver.page_fault", cycles)
            obs.metrics.counter("epc.faults").inc(faults)
            obs.metrics.counter("epc.evictions").inc(evictions)
            self._update_gauges(obs)
        self.stats.faults_serviced += faults
        self.stats.total_ns += ns
        return ns

    def _pressure_spike(self, pages: int) -> None:
        """A hostile co-tenant touches ``pages`` fresh EPC pages,
        evicting resident pages of the enclaves under test. The EWB
        work is charged (the driver does it on the victim's time); the
        cursor advances so consecutive spikes hit cold pages."""
        start = self._pressure_cursor * self.epc.page_bytes
        nbytes = pages * self.epc.page_bytes
        self._pressure_cursor += pages
        hostile_faults = self.epc.touch_range(_PRESSURE_TENANT_ID, start, nbytes)
        cycles = (
            hostile_faults * self.platform.cost_model.memory.epc_page_fault_cycles
        )
        ns = self.platform.charge_cycles("sgx.driver.pressure_spike", cycles)
        self.stats.pressure_spikes += 1
        self.stats.pressure_faults += hostile_faults
        self.stats.total_ns += ns
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("epc.pressure_spikes").inc()
            obs.metrics.counter("epc.pressure_faults").inc(hostile_faults)
            self._update_gauges(obs)

    def release_enclave(self, enclave_id: int) -> int:
        """Reclaim all EPC pages of a destroyed enclave."""
        released = self.epc.evict_enclave(enclave_id)
        obs = self.platform.obs
        if obs is not None:
            self._update_gauges(obs)
        return released

    def _update_gauges(self, obs) -> None:
        """Sample EPC residency; watermarks give peak occupancy over time."""
        resident = self.epc.resident_pages()
        obs.metrics.gauge("epc.resident_pages").set(resident)
        obs.metrics.gauge("epc.resident_bytes").set(resident * self.epc.page_bytes)
        # Per-owner residency only exists once the EPC is partitioned,
        # so unpartitioned runs emit exactly the pre-existing metrics.
        for owner in self._partition_owners:
            obs.metrics.gauge(f"epc.owner.{owner}.resident_pages").set(
                self.epc.resident_pages(owner)
            )

    @property
    def epc_stats(self) -> EpcStats:
        return self.epc.stats
