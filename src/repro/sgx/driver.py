"""SGX kernel driver model: services EPC faults and charges swap costs.

The driver owns the machine-wide :class:`EpcPageCache` and converts
page faults (EWB/ELDU swaps between EPC and DRAM) into virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costs.platform import Platform
from repro.sgx.epc import EpcPageCache, EpcStats


@dataclass
class DriverStats:
    """Driver-level accounting."""

    faults_serviced: int = 0
    total_ns: float = 0.0


class SgxDriver:
    """Linux SGX driver (isgx/in-kernel) paging model, version 2.11-ish."""

    def __init__(self, platform: Platform, version: str = "2.11") -> None:
        self.platform = platform
        self.version = version
        self.epc = EpcPageCache(
            capacity_bytes=platform.spec.epc_usable_bytes,
            page_bytes=platform.spec.page_bytes,
        )
        self.stats = DriverStats()

    def access(self, enclave_id: int, start_byte: int, nbytes: int) -> float:
        """Charge an enclave's memory access against the EPC; returns ns."""
        evictions_before = self.epc.stats.evictions
        faults = self.epc.touch_range(enclave_id, start_byte, nbytes)
        if not faults:
            return 0.0
        cycles = faults * self.platform.cost_model.memory.epc_page_fault_cycles
        obs = self.platform.obs
        if obs is None:
            ns = self.platform.charge_cycles("sgx.driver.page_fault", cycles)
        else:
            evictions = self.epc.stats.evictions - evictions_before
            with obs.tracer.span(
                "epc.page_fault",
                attrs={
                    "enclave": enclave_id,
                    "faults": faults,
                    "evictions": evictions,
                },
            ):
                ns = self.platform.charge_cycles("sgx.driver.page_fault", cycles)
            obs.metrics.counter("epc.faults").inc(faults)
            obs.metrics.counter("epc.evictions").inc(evictions)
            self._update_gauges(obs)
        self.stats.faults_serviced += faults
        self.stats.total_ns += ns
        return ns

    def release_enclave(self, enclave_id: int) -> int:
        """Reclaim all EPC pages of a destroyed enclave."""
        released = self.epc.evict_enclave(enclave_id)
        obs = self.platform.obs
        if obs is not None:
            self._update_gauges(obs)
        return released

    def _update_gauges(self, obs) -> None:
        """Sample EPC residency; watermarks give peak occupancy over time."""
        resident = self.epc.resident_pages()
        obs.metrics.gauge("epc.resident_pages").set(resident)
        obs.metrics.gauge("epc.resident_bytes").set(resident * self.epc.page_bytes)

    @property
    def epc_stats(self) -> EpcStats:
        return self.epc.stats
