"""Switchless calls: worker-pool model (Tian et al., cited in §7).

Intel's switchless-call library replaces hardware transitions with
shared-memory task queues served by busy-waiting worker threads:

- a caller posts the call into a queue; if a worker is free, the call
  runs without any EENTER/EEXIT;
- if every worker is busy (or the queue is full), the caller *falls
  back* to a regular transition;
- workers burn CPU while idle, so the pool size is a real trade-off.

The simulation tracks in-flight switchless calls to decide worker
availability (nested cross-boundary calls occupy workers, exactly the
situation that exhausts small pools), charges queue-hop costs for
switchless dispatch, and full transition costs on fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.costs.platform import Platform
from repro.errors import ConfigurationError
from repro.sgx.enclave import Enclave
from repro.sgx.transitions import TransitionLayer

T = TypeVar("T")


@dataclass(frozen=True)
class SwitchlessConfig:
    """Worker-pool sizing (the Intel library's uworkers/tworkers)."""

    trusted_workers: int = 2  # serve switchless ecalls
    untrusted_workers: int = 2  # serve switchless ocalls

    def __post_init__(self) -> None:
        if self.trusted_workers < 0 or self.untrusted_workers < 0:
            raise ConfigurationError("worker counts cannot be negative")


@dataclass
class SwitchlessStats:
    """Dispatch outcomes."""

    switchless_ecalls: int = 0
    switchless_ocalls: int = 0
    fallback_ecalls: int = 0
    fallback_ocalls: int = 0
    #: Calls rerouted to the fallback by an injected worker stall.
    stalled_ecalls: int = 0
    stalled_ocalls: int = 0

    @property
    def fallback_rate(self) -> float:
        total = (
            self.switchless_ecalls
            + self.switchless_ocalls
            + self.fallback_ecalls
            + self.fallback_ocalls
        )
        if not total:
            return 0.0
        return (self.fallback_ecalls + self.fallback_ocalls) / total


class SwitchlessLayer:
    """Transition layer with worker-served fast paths."""

    def __init__(
        self,
        platform: Platform,
        enclave: Enclave,
        config: SwitchlessConfig = SwitchlessConfig(),
    ) -> None:
        self.platform = platform
        self.enclave = enclave
        self.config = config
        self.stats = SwitchlessStats()
        # Fallback path uses an ordinary (non-switchless) layer.
        self._fallback = TransitionLayer(platform, enclave, switchless=False)
        self._busy_trusted = 0
        self._busy_untrusted = 0

    # -- crossings ------------------------------------------------------------

    def ecall(self, name: str, body: Callable[[], T], payload_bytes: int = 0) -> T:
        self.enclave.require_usable()
        if self._stalled("ecall", name):
            self.stats.stalled_ecalls += 1
            self.stats.fallback_ecalls += 1
            return self._fallback.ecall(name, body, payload_bytes=payload_bytes)
        if self._busy_trusted < self.config.trusted_workers:
            self._busy_trusted += 1
            self.enclave.begin_call()
            try:
                self._charge_switchless("ecall", name, payload_bytes)
                self.stats.switchless_ecalls += 1
                return body()
            finally:
                self._busy_trusted -= 1
                self.enclave.end_call()
        self.stats.fallback_ecalls += 1
        return self._fallback.ecall(name, body, payload_bytes=payload_bytes)

    def ocall(self, name: str, body: Callable[[], T], payload_bytes: int = 0) -> T:
        self.enclave.require_usable()
        if self._stalled("ocall", name):
            self.stats.stalled_ocalls += 1
            self.stats.fallback_ocalls += 1
            return self._fallback.ocall(name, body, payload_bytes=payload_bytes)
        if self._busy_untrusted < self.config.untrusted_workers:
            self._busy_untrusted += 1
            try:
                self._charge_switchless("ocall", name, payload_bytes)
                self.stats.switchless_ocalls += 1
                return body()
            finally:
                self._busy_untrusted -= 1
        self.stats.fallback_ocalls += 1
        return self._fallback.ocall(name, body, payload_bytes=payload_bytes)

    def _stalled(self, kind: str, name: str) -> bool:
        """Injected worker stall: the pool is wedged, fall back to a
        hardware transition instead of busy-waiting forever."""
        faults = self.platform.faults
        if faults is None:
            return False
        if not faults.worker_stall(kind, name, self.platform.clock.now_ns):
            return False
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("sgx.switchless_stalls").inc()
        return True

    # -- accounting --------------------------------------------------------------

    def _charge_switchless(self, kind: str, name: str, payload_bytes: int) -> None:
        trans = self.platform.cost_model.transitions
        cycles = (
            trans.switchless_call_cycles
            + trans.edge_fixed_cycles
            + payload_bytes * trans.edge_byte_cycles
        )
        self.platform.charge_cycles(f"transition.switchless.{kind}.{name}", cycles)

    def idle_worker_cost(self, duration_s: float) -> float:
        """CPU burned by busy-waiting workers over ``duration_s`` — the
        price of the pool even when no calls arrive."""
        if duration_s < 0:
            raise ConfigurationError("duration cannot be negative")
        workers = self.config.trusted_workers + self.config.untrusted_workers
        cycles = workers * duration_s * self.platform.spec.cpu_ghz * 1e9
        return self.platform.spec.cycles_to_ns(cycles)

    @property
    def fallback_stats(self):
        return self._fallback.stats
