"""Remote attestation: reports, quotes and verification (§4).

Montsalvat's threat model relies on remote attestation to validate the
integrity of the enclave at runtime. This module models the flow:

1. the enclave produces a *report* binding its measurement (MRENCLAVE
   analog) to caller-supplied report data;
2. the platform's quoting enclave signs the report into a *quote* with
   a platform key (HMAC stands in for EPID/DCAP signatures);
3. a relying party verifies the quote against the expected measurement.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.errors import AttestationError
from repro.sgx.enclave import Enclave


@dataclass(frozen=True)
class Report:
    """Local attestation report produced inside an enclave."""

    measurement: str
    report_data: bytes

    def digest(self) -> bytes:
        payload = self.measurement.encode("utf-8") + self.report_data
        return hashlib.sha256(payload).digest()


@dataclass(frozen=True)
class Quote:
    """Signed report suitable for remote verification."""

    report: Report
    signature: bytes


@dataclass(frozen=True)
class TargetedReport:
    """Local-attestation report, verifiable only by the target enclave."""

    report: Report
    target_measurement: str
    mac: bytes


class AttestationService:
    """Quoting + verification service keyed by a per-platform secret."""

    def __init__(self, platform_key: bytes = b"") -> None:
        self._platform_key = platform_key or secrets.token_bytes(32)

    # -- enclave side ---------------------------------------------------------

    def create_report(self, enclave: Enclave, report_data: bytes = b"") -> Report:
        """EREPORT analog: bind the enclave's measurement to user data."""
        enclave.require_usable()
        if len(report_data) > 64:
            raise AttestationError("report data limited to 64 bytes")
        return Report(measurement=enclave.measurement, report_data=report_data)

    # -- quoting enclave --------------------------------------------------------

    def quote(self, report: Report) -> Quote:
        """Sign a report with the platform key (EPID/DCAP stand-in)."""
        signature = hmac.new(
            self._platform_key, report.digest(), hashlib.sha256
        ).digest()
        return Quote(report=report, signature=signature)

    # -- local (enclave-to-enclave) attestation ---------------------------------

    def create_targeted_report(
        self, enclave: Enclave, target: Enclave, report_data: bytes = b""
    ) -> "TargetedReport":
        """EREPORT targeted at another enclave on the same platform.

        The report's MAC uses the *target's* report key, so only the
        target enclave (via EGETKEY) can verify it — SGX local
        attestation, used when multiple enclaves cooperate.
        """
        enclave.require_usable()
        target.require_usable()
        if len(report_data) > 64:
            raise AttestationError("report data limited to 64 bytes")
        report = Report(measurement=enclave.measurement, report_data=report_data)
        mac = hmac.new(
            self._report_key(target), report.digest(), hashlib.sha256
        ).digest()
        return TargetedReport(
            report=report, target_measurement=target.measurement, mac=mac
        )

    def verify_local(self, targeted: "TargetedReport", verifier: Enclave) -> None:
        """Verify a targeted report inside the target enclave."""
        verifier.require_usable()
        if targeted.target_measurement != verifier.measurement:
            raise AttestationError(
                "report was targeted at a different enclave"
            )
        expected = hmac.new(
            self._report_key(verifier), targeted.report.digest(), hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, targeted.mac):
            raise AttestationError("local attestation MAC verification failed")

    def _report_key(self, enclave: Enclave) -> bytes:
        """EGETKEY(REPORT) analog: platform secret + target measurement."""
        return hashlib.sha256(
            self._platform_key + enclave.measurement.encode("utf-8")
        ).digest()

    # -- relying party ----------------------------------------------------------

    def verify(self, quote: Quote, expected_measurement: str) -> None:
        """Verify quote signature and measurement; raise on mismatch."""
        expected_sig = hmac.new(
            self._platform_key, quote.report.digest(), hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected_sig, quote.signature):
            raise AttestationError("quote signature verification failed")
        if quote.report.measurement != expected_measurement:
            raise AttestationError(
                "measurement mismatch: enclave is not the expected build"
            )
