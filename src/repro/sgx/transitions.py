"""Ecall/ocall transition layer with statistics.

Ecalls enter the enclave, ocalls exit it; both are specialised function
calls costing up to ~13,100 cycles of context switch (§2.1). Montsalvat
additionally pays the GraalVM isolate attach + relay dispatch on every
crossing, which dominates the measured RMI latencies (Fig. 3/4).

The layer optionally runs in *switchless* mode (the paper's future-work
direction, after Tian et al.): calls are handed to a worker thread
through shared memory instead of performing a hardware transition.

When a :class:`~repro.faults.FaultInjector` is attached to the
platform, each crossing first consults it: transient aborts and
enclave crashes surface as :class:`~repro.errors.EnclaveLostError`
(``pre``-dispatch faults never run the body; ``mid`` faults run it and
lose the reply), and worker stalls silently reroute a switchless call
through the hardware path. With no injector attached the only overhead
is one attribute check per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TypeVar

from repro.costs.platform import Platform
from repro.errors import EnclaveLostError, TransitionError
from repro.sgx.enclave import Enclave

T = TypeVar("T")


@dataclass
class TransitionStats:
    """Counts and time spent crossing the boundary."""

    ecalls: int = 0
    ocalls: int = 0
    switchless_calls: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    total_ns: float = 0.0
    #: Crossings that failed with an injected fault.
    faulted_calls: int = 0
    #: Switchless calls rerouted through the hardware path by a stall.
    stall_fallbacks: int = 0
    #: Crossings that carried a coalesced batch (``calls > 1``).
    batch_crossings: int = 0
    #: Logical calls carried by those batch crossings.
    batched_calls: int = 0
    #: Crossings that carried zero-copy arena regions.
    arena_crossings: int = 0
    #: Staged bytes those crossings authenticated (``sgx.arena.mac``).
    arena_bytes: int = 0

    @property
    def crossings(self) -> int:
        return self.ecalls + self.ocalls + self.switchless_calls

    @property
    def logical_calls(self) -> int:
        """Application-level invocations, counting batch members."""
        return self.crossings - self.batch_crossings + self.batched_calls


class TransitionLayer:
    """Performs priced ecall/ocall crossings for one enclave."""

    def __init__(
        self,
        platform: Platform,
        enclave: Enclave,
        switchless: bool = False,
    ) -> None:
        self.platform = platform
        self.enclave = enclave
        self.switchless = switchless
        self.stats = TransitionStats()
        #: Ecalls currently executing: each consumes one TCS slot; a
        #: re-entrant ecall during an ocall takes another (SGX
        #: semantics — deep cross-boundary recursion runs out of TCS).
        self._active_ecalls = 0

    # -- crossings ------------------------------------------------------------

    def ecall(
        self,
        name: str,
        body: Callable[[], T],
        payload_bytes: int = 0,
        attach_isolate: bool = True,
        calls: int = 1,
        arena_bytes: int = 0,
    ) -> T:
        """Enter the enclave, run ``body`` inside, return its result.

        ``calls`` > 1 marks a coalesced batch crossing: one transition
        charge carries that many logical invocations (the coalescer
        already priced per-call marshalling at enqueue time).
        ``arena_bytes`` > 0 marks a zero-copy crossing: that many bytes
        are staged in the untrusted arena and the crossing pays only
        their integrity tag (``sgx.arena.mac``), not the edge copy.
        """
        self.enclave.require_usable()
        if self._active_ecalls >= self.enclave.config.tcs_count:
            raise TransitionError(
                f"SGX_ERROR_OUT_OF_TCS: {self._active_ecalls} ecalls active, "
                f"enclave has {self.enclave.config.tcs_count} TCS slots"
            )
        faults = self.platform.faults
        fault = (
            faults.transition_fault("ecall", name, self.platform.clock.now_ns)
            if faults is not None
            else None
        )
        obs = self.platform.obs
        span = None
        if obs is not None:
            span = obs.tracer.start_span(
                "sgx.ecall",
                attrs=self._span_attrs(name, payload_bytes, calls, arena_bytes),
            )
        self._charge("ecall", name, payload_bytes, attach_isolate, arena_bytes)
        self.stats.ecalls += 1
        self.stats.bytes_in += payload_bytes
        self._count_batch(calls)
        if fault is not None and fault.phase == "pre":
            # The transition itself aborted: the body never dispatched.
            error = self._fault_error(fault)
            self._finish("ecall", span, obs, payload_bytes, error)
            raise error
        self._active_ecalls += 1
        self.enclave.begin_call()
        error: Optional[BaseException] = None
        try:
            result = body()
            if fault is not None:
                # Mid-call loss: the body executed but the reply is gone.
                error = self._fault_error(fault)
                raise error
            return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._active_ecalls -= 1
            self.enclave.end_call()
            self._finish("ecall", span, obs, payload_bytes, error)

    def ocall(
        self,
        name: str,
        body: Callable[[], T],
        payload_bytes: int = 0,
        attach_isolate: bool = True,
        calls: int = 1,
        arena_bytes: int = 0,
    ) -> T:
        """Exit the enclave, run ``body`` outside, return its result.

        ``calls`` and ``arena_bytes`` have the same meaning as for
        :meth:`ecall`.
        """
        self.enclave.require_usable()
        faults = self.platform.faults
        fault = (
            faults.transition_fault("ocall", name, self.platform.clock.now_ns)
            if faults is not None
            else None
        )
        obs = self.platform.obs
        span = None
        if obs is not None:
            span = obs.tracer.start_span(
                "sgx.ocall",
                attrs=self._span_attrs(name, payload_bytes, calls, arena_bytes),
            )
        self._charge("ocall", name, payload_bytes, attach_isolate, arena_bytes)
        self.stats.ocalls += 1
        self.stats.bytes_out += payload_bytes
        self._count_batch(calls)
        if fault is not None and fault.phase == "pre":
            error = self._fault_error(fault)
            self._finish("ocall", span, obs, payload_bytes, error)
            raise error
        error = None
        try:
            result = body()
            if fault is not None:
                error = self._fault_error(fault)
                raise error
            return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._finish("ocall", span, obs, payload_bytes, error)

    def _span_attrs(
        self, name: str, payload_bytes: int, calls: int, arena_bytes: int = 0
    ) -> dict:
        attrs = {
            "routine": name,
            "payload_bytes": payload_bytes,
            "enclave": self.enclave.enclave_id,
            "mode": "switchless" if self.switchless else "hw",
        }
        if calls != 1:
            # Only batch crossings carry the attribute, so unbatched
            # span streams (and their fingerprints) are unchanged.
            attrs["calls"] = calls
        if arena_bytes:
            # Same rule: arena-less span streams stay byte-identical.
            attrs["arena_bytes"] = arena_bytes
        return attrs

    def _count_batch(self, calls: int) -> None:
        if calls <= 1:
            return
        self.stats.batch_crossings += 1
        self.stats.batched_calls += calls
        obs = self.platform.obs
        if obs is not None:
            obs.metrics.counter("sgx.batch_crossings").inc()
            obs.metrics.counter("sgx.batched_calls").inc(calls)

    # -- internals ------------------------------------------------------------

    def _fault_error(self, fault: Any) -> EnclaveLostError:
        """Apply a fired fault decision; returns the error to raise."""
        self.stats.faulted_calls += 1
        if fault.crash:
            self.enclave.mark_lost()
        return EnclaveLostError(
            f"SGX_ERROR_ENCLAVE_LOST: {fault.message}",
            phase=fault.phase,
            transient=not fault.crash,
        )

    def _finish(
        self,
        kind: str,
        span: Optional[Any],
        obs: Optional[Any],
        payload_bytes: int,
        error: Optional[BaseException],
    ) -> None:
        if obs is None:
            return
        if error is not None:
            span.set_attr("status", "error")
            span.set_attr("error", type(error).__name__)
            obs.metrics.counter(f"sgx.{kind}_errors").inc()
        obs.tracer.end_span(span)
        if kind == "ecall":
            obs.metrics.counter("sgx.ecalls").inc()
            obs.metrics.counter("sgx.bytes_in").inc(payload_bytes)
            obs.metrics.histogram("sgx.ecall_ns").observe(span.duration_ns)
        else:
            obs.metrics.counter("sgx.ocalls").inc()
            obs.metrics.counter("sgx.bytes_out").inc(payload_bytes)
            obs.metrics.histogram("sgx.ocall_ns").observe(span.duration_ns)

    def _charge(
        self,
        kind: str,
        name: str,
        payload_bytes: int,
        attach_isolate: bool,
        arena_bytes: int = 0,
    ) -> None:
        if payload_bytes < 0:
            raise TransitionError("payload size cannot be negative")
        if arena_bytes < 0:
            raise TransitionError("arena byte count cannot be negative")
        trans = self.platform.cost_model.transitions
        switchless = self.switchless
        if switchless:
            faults = self.platform.faults
            if faults is not None and faults.worker_stall(
                kind, name, self.platform.clock.now_ns
            ):
                # Worker pool stalled: degrade to a hardware transition
                # for this call (priced accordingly) instead of hanging.
                switchless = False
                self.stats.stall_fallbacks += 1
                obs = self.platform.obs
                if obs is not None:
                    obs.metrics.counter("sgx.switchless_stalls").inc()
        if switchless:
            cycles = trans.switchless_call_cycles
            self.stats.switchless_calls += 1
            category = f"transition.switchless.{name}"
        else:
            base = trans.ecall_cycles if kind == "ecall" else trans.ocall_cycles
            cycles = base
            category = f"transition.{kind}.{name}"
        cycles += trans.edge_fixed_cycles + payload_bytes * trans.edge_byte_cycles
        if attach_isolate and not switchless:
            cycles += trans.isolate_attach_cycles
        ns = self.platform.charge_cycles(category, cycles)
        self.stats.total_ns += ns
        if arena_bytes:
            # Zero-copy crossing: the staged region skipped per-call
            # serialization and the edge copy; the enclave instead
            # authenticates it in place (ciphertext+MAC, §Gramine-style
            # staging) before trusting a single staged byte.
            arena_costs = self.platform.cost_model.arena
            mac_ns = self.platform.charge_cycles(
                "sgx.arena.mac",
                arena_costs.mac_fixed_cycles
                + arena_bytes * arena_costs.mac_byte_cycles,
            )
            self.stats.total_ns += mac_ns
            self.stats.arena_crossings += 1
            self.stats.arena_bytes += arena_bytes
            obs = self.platform.obs
            if obs is not None:
                obs.metrics.counter("arena.crossings").inc()
                obs.metrics.counter("arena.mac_bytes").inc(arena_bytes)
        if switchless:
            obs = self.platform.obs
            if obs is not None:
                obs.metrics.counter("sgx.switchless_calls").inc()
