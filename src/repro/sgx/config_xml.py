"""Enclave configuration XML (the SDK's ``Enclave.config.xml``).

The Intel SDK describes an enclave's launch parameters — heap and stack
maxima, TCS count, product/security version, debug flag — in an XML
file consumed at signing time. The paper's enclaves use 4 GB heaps and
8 MB stacks (§6.1); this module renders and parses that file so the
build artifacts are complete.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError
from repro.sgx.enclave import EnclaveConfig

_TEMPLATE = """<EnclaveConfiguration>
  <ProdID>{prod_id}</ProdID>
  <ISVSVN>{isv_svn}</ISVSVN>
  <StackMaxSize>{stack:#x}</StackMaxSize>
  <HeapMaxSize>{heap:#x}</HeapMaxSize>
  <TCSNum>{tcs}</TCSNum>
  <TCSPolicy>1</TCSPolicy>
  <DisableDebug>{disable_debug}</DisableDebug>
</EnclaveConfiguration>
"""


def render_config_xml(
    config: EnclaveConfig, prod_id: int = 0, isv_svn: int = 1
) -> str:
    """Render an ``Enclave.config.xml`` for a config."""
    if prod_id < 0 or isv_svn < 0:
        raise ConfigurationError("ProdID/ISVSVN cannot be negative")
    return _TEMPLATE.format(
        prod_id=prod_id,
        isv_svn=isv_svn,
        stack=config.stack_max_bytes,
        heap=config.heap_max_bytes,
        tcs=config.tcs_count,
        disable_debug=0 if config.debug else 1,
    )


def parse_config_xml(text: str) -> EnclaveConfig:
    """Parse an ``Enclave.config.xml`` back into an :class:`EnclaveConfig`."""

    def field(tag: str) -> str:
        match = re.search(rf"<{tag}>([^<]+)</{tag}>", text)
        if match is None:
            raise ConfigurationError(f"config XML missing <{tag}>")
        return match.group(1).strip()

    def as_int(value: str) -> int:
        try:
            return int(value, 0)  # handles 0x... and decimal
        except ValueError:
            raise ConfigurationError(f"bad integer in config XML: {value!r}") from None

    heap = as_int(field("HeapMaxSize"))
    stack = as_int(field("StackMaxSize"))
    tcs = as_int(field("TCSNum"))
    disable_debug = as_int(field("DisableDebug"))
    if heap <= 0 or stack <= 0 or tcs <= 0:
        raise ConfigurationError("enclave sizes and TCS count must be positive")
    return EnclaveConfig(
        heap_max_bytes=heap,
        stack_max_bytes=stack,
        tcs_count=tcs,
        debug=not disable_debug,
    )
