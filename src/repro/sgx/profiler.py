"""Transition profiler, after sgx-perf (Weichbrodt et al., cited §2.1).

Wraps a :class:`TransitionLayer` to record per-routine call counts,
payload volumes and latencies, then reports the hottest crossings and
flags batching/switchless candidates — the analysis the paper's future
work (transition-less calls for expensive RMIs) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple, TypeVar

from repro.sgx.transitions import TransitionLayer

T = TypeVar("T")

#: A routine crossing more often than this per virtual second is a
#: switchless-call candidate (sgx-perf's "frequent short ecalls" rule).
SWITCHLESS_CANDIDATE_HZ = 1_000.0


@dataclass
class RoutineProfile:
    """Accumulated statistics for one ecall/ocall routine."""

    name: str
    kind: str  # "ecall" | "ocall"
    calls: int = 0
    payload_bytes: int = 0
    total_ns: float = 0.0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    @property
    def mean_payload(self) -> float:
        return self.payload_bytes / self.calls if self.calls else 0.0


class TransitionProfiler:
    """Profiling proxy over a transition layer."""

    def __init__(self, layer: TransitionLayer) -> None:
        self.layer = layer
        self.platform = layer.platform
        self._profiles: Dict[Tuple[str, str], RoutineProfile] = {}
        self._started_s = self.platform.now_s

    # -- instrumented crossings ---------------------------------------------------

    def ecall(self, name: str, body: Callable[[], T], payload_bytes: int = 0) -> T:
        return self._timed("ecall", name, payload_bytes, lambda: self.layer.ecall(
            name, body, payload_bytes=payload_bytes
        ))

    def ocall(self, name: str, body: Callable[[], T], payload_bytes: int = 0) -> T:
        return self._timed("ocall", name, payload_bytes, lambda: self.layer.ocall(
            name, body, payload_bytes=payload_bytes
        ))

    def _timed(self, kind: str, name: str, payload: int, run: Callable[[], T]) -> T:
        span = self.platform.measure()
        result = run()
        profile = self._profiles.get((kind, name))
        if profile is None:
            profile = RoutineProfile(name=name, kind=kind)
            self._profiles[(kind, name)] = profile
        profile.calls += 1
        profile.payload_bytes += payload
        profile.total_ns += span.elapsed_ns()
        return result

    # -- analysis ------------------------------------------------------------------

    def profiles(self) -> List[RoutineProfile]:
        return sorted(
            self._profiles.values(), key=lambda p: p.total_ns, reverse=True
        )

    def hottest(self, top: int = 5) -> List[RoutineProfile]:
        return self.profiles()[:top]

    def switchless_candidates(self) -> List[RoutineProfile]:
        """Routines called frequently enough that worker-thread
        (switchless) dispatch would amortise (future work, §7)."""
        elapsed_s = max(1e-9, self.platform.now_s - self._started_s)
        return [
            profile
            for profile in self.profiles()
            if profile.calls / elapsed_s >= SWITCHLESS_CANDIDATE_HZ
        ]

    def report(self) -> str:
        lines = [
            f"{'routine':<42} {'kind':<6} {'calls':>8} "
            f"{'mean_us':>9} {'total_ms':>10}"
        ]
        for profile in self.profiles():
            lines.append(
                f"{profile.name:<42} {profile.kind:<6} {profile.calls:>8} "
                f"{profile.mean_ns / 1e3:>9.2f} {profile.total_ns / 1e6:>10.3f}"
            )
        candidates = self.switchless_candidates()
        if candidates:
            names = ", ".join(p.name for p in candidates)
            lines.append(f"switchless candidates: {names}")
        return "\n".join(lines)
