"""Transition profiler, after sgx-perf (Weichbrodt et al., cited §2.1).

Consumes the :mod:`repro.obs` span stream to record per-routine call
counts, payload volumes and latencies, then reports the hottest
crossings and flags batching/switchless candidates — the analysis the
paper's future work (transition-less calls for expensive RMIs) builds
on.

Attaching a profiler to a :class:`TransitionLayer` enables
observability on the layer's platform (idempotently) and subscribes to
the tracer's span stream: every ``sgx.ecall``/``sgx.ocall`` span of
*this layer's enclave* is aggregated as it completes, whether the
crossing was issued through the profiler's wrappers or directly on the
layer. The subscription sees all spans regardless of ring-buffer
capacity, so long runs never undercount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, TypeVar

from repro.batching.ranking import HOT_ROUTINE_HZ, rank_hot_routines
from repro.obs.tracer import Span
from repro.sgx.transitions import TransitionLayer

T = TypeVar("T")

#: A routine crossing more often than this per virtual second is a
#: switchless-call candidate (sgx-perf's "frequent short ecalls" rule).
#: Shared with the batching hot-site detector, which applies the same
#: heuristic to pick coalescing sites.
SWITCHLESS_CANDIDATE_HZ = HOT_ROUTINE_HZ

#: Span names the transition layer emits (kind is the suffix).
_TRANSITION_SPANS = {"sgx.ecall": "ecall", "sgx.ocall": "ocall"}


@dataclass
class RoutineProfile:
    """Accumulated statistics for one ecall/ocall routine."""

    name: str
    kind: str  # "ecall" | "ocall"
    calls: int = 0
    payload_bytes: int = 0
    total_ns: float = 0.0
    #: Boundary transitions observed; < ``calls`` once batching
    #: coalesces several logical calls into one crossing.
    crossings: int = 0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    @property
    def mean_payload(self) -> float:
        return self.payload_bytes / self.calls if self.calls else 0.0


class TransitionProfiler:
    """Span-stream aggregator over one transition layer."""

    def __init__(self, layer: TransitionLayer) -> None:
        self.layer = layer
        self.platform = layer.platform
        self._profiles: Dict[Tuple[str, str], RoutineProfile] = {}
        self._started_s = self.platform.now_s
        self._enclave_id = layer.enclave.enclave_id
        self._obs = self.platform.enable_observability()
        self._obs.tracer.add_listener(self._on_span)

    def close(self) -> None:
        """Stop consuming the span stream (profiles stay readable)."""
        self._obs.tracer.remove_listener(self._on_span)

    # -- span-stream consumption ----------------------------------------------

    def _on_span(self, span: Span) -> None:
        kind = _TRANSITION_SPANS.get(span.name)
        if kind is None or span.attrs.get("enclave") != self._enclave_id:
            return
        name = span.attrs.get("routine", "?")
        profile = self._profiles.get((kind, name))
        if profile is None:
            profile = RoutineProfile(name=name, kind=kind)
            self._profiles[(kind, name)] = profile
        profile.calls += span.attrs.get("calls", 1)
        profile.crossings += 1
        profile.payload_bytes += span.attrs.get("payload_bytes", 0)
        profile.total_ns += span.duration_ns

    # -- instrumented crossings ---------------------------------------------------

    def ecall(self, name: str, body: Callable[[], T], payload_bytes: int = 0) -> T:
        return self.layer.ecall(name, body, payload_bytes=payload_bytes)

    def ocall(self, name: str, body: Callable[[], T], payload_bytes: int = 0) -> T:
        return self.layer.ocall(name, body, payload_bytes=payload_bytes)

    # -- analysis ------------------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Virtual seconds this profiler has been recording."""
        return max(1e-9, self.platform.now_s - self._started_s)

    def profiles(self) -> List[RoutineProfile]:
        return sorted(
            self._profiles.values(), key=lambda p: p.total_ns, reverse=True
        )

    def hottest(self, top: int = 5) -> List[RoutineProfile]:
        return self.profiles()[:top]

    def switchless_candidates(self) -> List[RoutineProfile]:
        """Routines called frequently enough that worker-thread
        (switchless) dispatch would amortise (future work, §7).

        Uses the shared :func:`repro.batching.ranking.rank_hot_routines`
        heuristic, so the switchless and batching analyses agree on
        what "hot" means."""
        return rank_hot_routines(
            self.profiles(),
            self.elapsed_s,
            min_rate_hz=SWITCHLESS_CANDIDATE_HZ,
        )

    def report(self) -> str:
        lines = [
            f"{'routine':<42} {'kind':<6} {'calls':>8} "
            f"{'mean_us':>9} {'total_ms':>10}"
        ]
        for profile in self.profiles():
            lines.append(
                f"{profile.name:<42} {profile.kind:<6} {profile.calls:>8} "
                f"{profile.mean_ns / 1e3:>9.2f} {profile.total_ns / 1e6:>10.3f}"
            )
        candidates = self.switchless_candidates()
        if candidates:
            names = ", ".join(p.name for p in candidates)
            lines.append(f"switchless candidates: {names}")
        return "\n".join(lines)
