"""Edger8r analog: generates bridge (edge) routines from EDL files.

The Intel SDK's Edger8r consumes EDL specifications and emits trusted
and untrusted bridge code that sanitises and marshals data across the
enclave boundary (§2.1). This generator emits equivalent C source text;
tests validate the structure (one bridge per routine, buffer copies for
sized pointer parameters, bounds checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sgx.edl import EdlFile, EdlFunction


@dataclass(frozen=True)
class EdgeArtifacts:
    """Generated bridge sources keyed by conventional file name."""

    files: Dict[str, str]

    def __getitem__(self, name: str) -> str:
        return self.files[name]

    def names(self):
        return sorted(self.files)


class Edger8r:
    """Generates trusted (``*_t``) and untrusted (``*_u``) bridges."""

    def generate(self, edl: EdlFile) -> EdgeArtifacts:
        base = edl.name
        files = {
            f"{base}_t.h": self._header(edl, trusted=True),
            f"{base}_t.c": self._bridges(edl, trusted=True),
            f"{base}_u.h": self._header(edl, trusted=False),
            f"{base}_u.c": self._bridges(edl, trusted=False),
        }
        return EdgeArtifacts(files=files)

    # -- rendering ------------------------------------------------------------

    def _header(self, edl: EdlFile, trusted: bool) -> str:
        side = "t" if trusted else "u"
        routines = edl.trusted if trusted else edl.untrusted
        lines = [
            f"/* {edl.name}_{side}.h — generated, do not edit */",
            f"#ifndef {edl.name.upper()}_{side.upper()}_H",
            f"#define {edl.name.upper()}_{side.upper()}_H",
            "#include <stddef.h>",
            "",
        ]
        for function in routines:
            lines.append(f"{function.signature()};")
        lines += ["", "#endif", ""]
        return "\n".join(lines)

    def _bridges(self, edl: EdlFile, trusted: bool) -> str:
        side = "t" if trusted else "u"
        routines = edl.trusted if trusted else edl.untrusted
        lines = [f"/* {edl.name}_{side}.c — generated, do not edit */"]
        lines.append(f'#include "{edl.name}_{side}.h"')
        lines.append("#include <string.h>")
        lines.append("")
        for function in routines:
            lines.extend(self._bridge_for(function, trusted))
            lines.append("")
        return "\n".join(lines)

    def _bridge_for(self, function: EdlFunction, trusted: bool) -> list:
        kind = "ecall" if trusted else "ocall"
        bridge_name = f"sgx_{function.name}"
        lines = [f"/* bridge for {kind} {function.name} */"]
        lines.append(f"int {bridge_name}(void* pms)")
        lines.append("{")
        lines.append(f"    ms_{function.name}_t* ms = (ms_{function.name}_t*)pms;")
        for param in function.params:
            if param.size_expr:
                # Sized buffers are bounds-checked and copied across the
                # boundary — the sanitisation step Edger8r exists for.
                lines.append(
                    f"    if (!sgx_is_outside_enclave(ms->{param.name}, "
                    f"ms->{param.size_expr})) return SGX_ERROR_INVALID_PARAMETER;"
                )
                lines.append(
                    f"    memcpy(local_{param.name}, ms->{param.name}, "
                    f"ms->{param.size_expr});"
                )
        args = ", ".join(
            (f"local_{p.name}" if p.size_expr else f"ms->{p.name}")
            for p in function.params
        )
        call = f"{function.name}({args});"
        if function.return_type != "void":
            call = f"ms->retval = {call}"
        lines.append(f"    {call}")
        lines.append("    return SGX_SUCCESS;")
        lines.append("}")
        return lines
