"""SGX SDK facade: signing and loading enclaves.

Mirrors the Intel SDK workflow (§2.1): enclave code is compiled into a
shared object, cryptographically hashed, *signed* in a trusted
environment (§4), and verified when loaded into enclave memory.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.costs.platform import Platform
from repro.errors import EnclaveError
from repro.runtime.context import RuntimeKind
from repro.sgx.driver import SgxDriver
from repro.sgx.enclave import Enclave, EnclaveConfig, EnclaveContents


@dataclass(frozen=True)
class SignedEnclave:
    """An enclave shared object plus its launch signature (SIGSTRUCT)."""

    contents: EnclaveContents
    signature: bytes
    signer: str


class SgxSdk:
    """Build-side (sign) and run-side (load) SDK entry points."""

    def __init__(self, platform: Platform, signing_key: bytes = b"") -> None:
        self.platform = platform
        self.driver = SgxDriver(platform)
        self._signing_key = signing_key or secrets.token_bytes(32)

    # -- trusted build environment ---------------------------------------------

    def sign(
        self,
        image_name: str,
        code_bytes: bytes,
        config: EnclaveConfig = EnclaveConfig(),
        signer: str = "montsalvat-dev",
    ) -> SignedEnclave:
        """Produce the SIGSTRUCT analog for an enclave shared object."""
        contents = EnclaveContents(
            image_name=image_name, code_bytes=code_bytes, config=config
        )
        signature = self._sign_measurement(contents.measure())
        return SignedEnclave(contents=contents, signature=signature, signer=signer)

    # -- untrusted loader ----------------------------------------------------------

    def create_enclave(
        self,
        signed: SignedEnclave,
        runtime: RuntimeKind = RuntimeKind.NATIVE_IMAGE,
    ) -> Enclave:
        """sgx_create_enclave analog: verify signature, load, EINIT."""
        expected = self._sign_measurement(signed.contents.measure())
        if not hmac.compare_digest(expected, signed.signature):
            raise EnclaveError(
                "enclave signature verification failed: refusing to load"
            )
        enclave = Enclave(self.platform, signed.contents, runtime=runtime)
        enclave.initialize()
        return enclave

    def destroy_enclave(self, enclave: Enclave) -> None:
        """sgx_destroy_enclave analog: teardown + EPC reclamation."""
        enclave.destroy()
        self.driver.release_enclave(enclave.enclave_id)

    # -- internals ------------------------------------------------------------------

    def _sign_measurement(self, measurement: str) -> bytes:
        return hmac.new(
            self._signing_key, measurement.encode("utf-8"), hashlib.sha256
        ).digest()
