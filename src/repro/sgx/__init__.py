"""Intel SGX substrate, simulated.

Implements the pieces of the SGX stack Montsalvat builds on (§2.1):

- :mod:`repro.sgx.epc` — the enclave page cache with LRU paging;
- :mod:`repro.sgx.driver` — the kernel driver that swaps EPC pages;
- :mod:`repro.sgx.enclave` — enclave lifecycle, measurement, heaps;
- :mod:`repro.sgx.transitions` — ecall/ocall machinery with statistics;
- :mod:`repro.sgx.edl` — the enclave definition language model;
- :mod:`repro.sgx.edger8r` — the edge-routine generator;
- :mod:`repro.sgx.attestation` — measurement, reports and quotes;
- :mod:`repro.sgx.sdk` — the SDK facade that signs and loads enclaves.
"""

from repro.sgx.attestation import AttestationService, Quote, Report, TargetedReport
from repro.sgx.config_xml import parse_config_xml, render_config_xml
from repro.sgx.driver import SgxDriver
from repro.sgx.edl import EdlFile, EdlFunction, EdlParam
from repro.sgx.edger8r import Edger8r
from repro.sgx.enclave import Enclave, EnclaveConfig, EnclaveState
from repro.sgx.epc import EpcPageCache, EpcStats
from repro.sgx.profiler import TransitionProfiler
from repro.sgx.sdk import SgxSdk, SignedEnclave
from repro.sgx.sealing import SealedBlob, SealingService, transparent_seal
from repro.sgx.switchless import SwitchlessConfig, SwitchlessLayer
from repro.sgx.transitions import TransitionLayer, TransitionStats

__all__ = [
    "TargetedReport",
    "parse_config_xml",
    "render_config_xml",
    "TransitionProfiler",
    "SealedBlob",
    "SealingService",
    "transparent_seal",
    "SwitchlessConfig",
    "SwitchlessLayer",
    "AttestationService",
    "Quote",
    "Report",
    "SgxDriver",
    "EdlFile",
    "EdlFunction",
    "EdlParam",
    "Edger8r",
    "Enclave",
    "EnclaveConfig",
    "EnclaveState",
    "EpcPageCache",
    "EpcStats",
    "SgxSdk",
    "SignedEnclave",
    "TransitionLayer",
    "TransitionStats",
]
