"""Enclave page cache (EPC) with LRU replacement.

Recent SGX processors expose at most a few hundred MB of EPC; the
paper's server has 128 MB of which 93.5 MB is usable (§6.1). The Linux
SGX driver swaps pages between the EPC and regular DRAM, which lets
enclaves exceed the EPC at a significant cost (§2.1). This module
models the page cache itself; :mod:`repro.sgx.driver` charges the
swap costs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import EpcError

#: Optional page-event observer: ``observer(kind, enclave_id, page)``
#: with kind ``"fault"`` or ``"evict"``. Installed by
#: :func:`repro.obs.hooks.install_epc_observer`.
PageObserver = Callable[[str, int, int], None]


@dataclass
class EpcStats:
    """Accumulated EPC behaviour."""

    hits: int = 0
    faults: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    def fault_rate(self) -> float:
        return self.faults / self.accesses if self.accesses else 0.0


class EpcPageCache:
    """LRU cache of (enclave_id, page_number) entries."""

    def __init__(self, capacity_bytes: int, page_bytes: int = 4096) -> None:
        if capacity_bytes <= 0:
            raise EpcError("EPC capacity must be positive")
        if page_bytes <= 0:
            raise EpcError("page size must be positive")
        self.page_bytes = page_bytes
        self.capacity_pages = capacity_bytes // page_bytes
        if self.capacity_pages == 0:
            raise EpcError("EPC smaller than one page")
        self.stats = EpcStats()
        self._resident: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.observer: Optional[PageObserver] = None
        #: Optional per-owner residency budgets (pages). An owner at its
        #: quota evicts its *own* LRU page instead of the global one, so
        #: co-tenant shards cannot starve each other. Empty by default:
        #: behaviour (and every priced figure) is unchanged.
        self._quota: Dict[int, int] = {}
        self._owner_resident: Dict[int, int] = {}

    # -- budget partitioning ----------------------------------------------------

    def set_quota(self, owner: int, pages: Optional[int]) -> None:
        """Cap ``owner``'s residency at ``pages`` (``None`` removes it)."""
        if pages is None:
            self._quota.pop(owner, None)
            return
        if pages < 1:
            raise EpcError("an EPC quota must be at least one page")
        self._quota[owner] = pages

    def quota_of(self, owner: int) -> Optional[int]:
        return self._quota.get(owner)

    def partition(
        self, owners: Iterable[int], total_pages: Optional[int] = None
    ) -> Dict[int, int]:
        """Split a page budget evenly across ``owners``; returns quotas."""
        owner_list = list(owners)
        if not owner_list:
            raise EpcError("cannot partition the EPC across zero owners")
        budget = self.capacity_pages if total_pages is None else total_pages
        share = budget // len(owner_list)
        if share < 1:
            raise EpcError(
                f"budget of {budget} pages is too small for "
                f"{len(owner_list)} owners"
            )
        quotas = {owner: share for owner in owner_list}
        for owner, pages in quotas.items():
            self.set_quota(owner, pages)
        return quotas

    @property
    def partitioned(self) -> bool:
        return bool(self._quota)

    def _evict_owner_lru(self, owner: int) -> Tuple[int, int]:
        for key in self._resident:
            if key[0] == owner:
                del self._resident[key]
                return key
        raise EpcError(f"owner {owner} is at quota but holds no pages")

    def touch(self, enclave_id: int, page: int) -> Tuple[bool, Optional[Tuple[int, int]]]:
        """Access one page.

        Returns ``(faulted, evicted)`` where ``evicted`` is the page
        pushed out to make room, if any.
        """
        key = (enclave_id, page)
        if key in self._resident:
            self._resident.move_to_end(key)
            self.stats.hits += 1
            return False, None
        self.stats.faults += 1
        evicted: Optional[Tuple[int, int]] = None
        quota = self._quota.get(enclave_id)
        if quota is not None and self._owner_resident.get(enclave_id, 0) >= quota:
            evicted = self._evict_owner_lru(enclave_id)
            self.stats.evictions += 1
        elif len(self._resident) >= self.capacity_pages:
            evicted, _ = self._resident.popitem(last=False)
            self.stats.evictions += 1
        if evicted is not None:
            self._owner_resident[evicted[0]] = (
                self._owner_resident.get(evicted[0], 1) - 1
            )
        self._resident[key] = None
        self._owner_resident[enclave_id] = (
            self._owner_resident.get(enclave_id, 0) + 1
        )
        if self.observer is not None:
            self.observer("fault", enclave_id, page)
            if evicted is not None:
                self.observer("evict", evicted[0], evicted[1])
        return True, evicted

    def touch_range(self, enclave_id: int, start_byte: int, nbytes: int) -> int:
        """Access a byte range; returns the number of faults incurred."""
        if nbytes < 0 or start_byte < 0:
            raise EpcError("byte ranges cannot be negative")
        if nbytes == 0:
            return 0
        first = start_byte // self.page_bytes
        last = (start_byte + nbytes - 1) // self.page_bytes
        faults = 0
        for page in range(first, last + 1):
            faulted, _ = self.touch(enclave_id, page)
            if faulted:
                faults += 1
        return faults

    def evict_enclave(self, enclave_id: int) -> int:
        """Drop every page of a destroyed enclave; returns pages dropped."""
        victims = [key for key in self._resident if key[0] == enclave_id]
        for key in victims:
            del self._resident[key]
        self._owner_resident.pop(enclave_id, None)
        return len(victims)

    def resident_pages(self, enclave_id: Optional[int] = None) -> int:
        if enclave_id is None:
            return len(self._resident)
        return sum(1 for key in self._resident if key[0] == enclave_id)

    def __repr__(self) -> str:
        return (
            f"EpcPageCache(resident={len(self._resident)}/"
            f"{self.capacity_pages} pages)"
        )
