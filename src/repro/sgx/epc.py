"""Enclave page cache (EPC) with LRU replacement.

Recent SGX processors expose at most a few hundred MB of EPC; the
paper's server has 128 MB of which 93.5 MB is usable (§6.1). The Linux
SGX driver swaps pages between the EPC and regular DRAM, which lets
enclaves exceed the EPC at a significant cost (§2.1). This module
models the page cache itself; :mod:`repro.sgx.driver` charges the
swap costs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.errors import EpcError

#: Optional page-event observer: ``observer(kind, enclave_id, page)``
#: with kind ``"fault"`` or ``"evict"``. Installed by
#: :func:`repro.obs.hooks.install_epc_observer`.
PageObserver = Callable[[str, int, int], None]


@dataclass
class EpcStats:
    """Accumulated EPC behaviour."""

    hits: int = 0
    faults: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    def fault_rate(self) -> float:
        return self.faults / self.accesses if self.accesses else 0.0


class EpcPageCache:
    """LRU cache of (enclave_id, page_number) entries."""

    def __init__(self, capacity_bytes: int, page_bytes: int = 4096) -> None:
        if capacity_bytes <= 0:
            raise EpcError("EPC capacity must be positive")
        if page_bytes <= 0:
            raise EpcError("page size must be positive")
        self.page_bytes = page_bytes
        self.capacity_pages = capacity_bytes // page_bytes
        if self.capacity_pages == 0:
            raise EpcError("EPC smaller than one page")
        self.stats = EpcStats()
        self._resident: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.observer: Optional[PageObserver] = None

    def touch(self, enclave_id: int, page: int) -> Tuple[bool, Optional[Tuple[int, int]]]:
        """Access one page.

        Returns ``(faulted, evicted)`` where ``evicted`` is the page
        pushed out to make room, if any.
        """
        key = (enclave_id, page)
        if key in self._resident:
            self._resident.move_to_end(key)
            self.stats.hits += 1
            return False, None
        self.stats.faults += 1
        evicted: Optional[Tuple[int, int]] = None
        if len(self._resident) >= self.capacity_pages:
            evicted, _ = self._resident.popitem(last=False)
            self.stats.evictions += 1
        self._resident[key] = None
        if self.observer is not None:
            self.observer("fault", enclave_id, page)
            if evicted is not None:
                self.observer("evict", evicted[0], evicted[1])
        return True, evicted

    def touch_range(self, enclave_id: int, start_byte: int, nbytes: int) -> int:
        """Access a byte range; returns the number of faults incurred."""
        if nbytes < 0 or start_byte < 0:
            raise EpcError("byte ranges cannot be negative")
        if nbytes == 0:
            return 0
        first = start_byte // self.page_bytes
        last = (start_byte + nbytes - 1) // self.page_bytes
        faults = 0
        for page in range(first, last + 1):
            faulted, _ = self.touch(enclave_id, page)
            if faulted:
                faults += 1
        return faults

    def evict_enclave(self, enclave_id: int) -> int:
        """Drop every page of a destroyed enclave; returns pages dropped."""
        victims = [key for key in self._resident if key[0] == enclave_id]
        for key in victims:
            del self._resident[key]
        return len(victims)

    def resident_pages(self, enclave_id: Optional[int] = None) -> int:
        if enclave_id is None:
            return len(self._resident)
        return sum(1 for key in self._resident if key[0] == enclave_id)

    def __repr__(self) -> str:
        return (
            f"EpcPageCache(resident={len(self._resident)}/"
            f"{self.capacity_pages} pages)"
        )
