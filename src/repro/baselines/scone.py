"""SCONE+JVM baseline: the unmodified application on an in-enclave JVM.

SCONE runs containers inside enclaves with a modified libc whose
syscalls leave the enclave through asynchronous shared-memory queues —
cheaper than a synchronous ocall, but the price of SCONE is elsewhere:
the libOS-style TCB plus the whole JVM live in enclave memory, so the
inflated working set grinds through the MEE and the EPC (§6.6).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.baselines.jvm import JvmBootModel
from repro.core.annotations import activate_runtime, deactivate_runtime
from repro.core.app import SingleContextSession
from repro.core.rmi import SingleContextRuntime
from repro.core.shim import ShimLibc
from repro.costs.machine import MB
from repro.costs.platform import Platform, fresh_platform
from repro.runtime.context import ExecutionContext, Location, RuntimeKind
from repro.sgx.enclave import EnclaveConfig
from repro.sgx.sdk import SgxSdk


class SconeExecutionContext(ExecutionContext):
    """Enclave context whose syscalls use SCONE's shielded interface.

    Overrides the shim-ocall path: SCONE's asynchronous syscall queues
    avoid the hardware transition, paying a flat interception cost plus
    the buffer copy out of the enclave.
    """

    def syscall(self, payload_bytes: float = 0.0, count: int = 1, name: str = "syscall") -> float:
        cm = self.platform.cost_model
        per_call = (
            cm.os.scone_syscall_cycles
            + payload_bytes * cm.transitions.edge_byte_cycles
            + cm.os.syscall_cycles
            + payload_bytes * cm.os.io_byte_cycles
        )
        return self.platform.charge_cycles(
            f"scone.syscall.{name}", per_call * count
        )


@dataclass(frozen=True)
class SconeImageModel:
    """What SCONE loads into the enclave besides the application."""

    #: Alpine + SCONE runtime + musl libc + OpenJDK8 (the large TCB the
    #: paper contrasts with Montsalvat's shim).
    tcb_bytes: int = 96 * MB
    boot: JvmBootModel = field(default_factory=JvmBootModel)


@contextmanager
def scone_jvm_session(
    platform: Optional[Platform] = None,
    model: SconeImageModel = SconeImageModel(),
    name: str = "scone",
) -> Iterator[SingleContextSession]:
    """Run a block as an unmodified JVM application in a SCONE enclave."""
    platform = platform or fresh_platform()
    sdk = SgxSdk(platform)
    signed = sdk.sign(
        f"{name}-container",
        b"\x7fELF" + b"scone-alpine-openjdk8" * 64,
        config=EnclaveConfig(heap_max_bytes=model.tcb_bytes + (2 << 30)),
    )
    enclave = sdk.create_enclave(signed, runtime=RuntimeKind.JVM)
    ctx = SconeExecutionContext(
        platform, Location.ENCLAVE, RuntimeKind.JVM, label=name
    )
    # The container TCB itself occupies EPC before the app runs.
    ctx.memory_traffic(model.tcb_bytes / 8, ws_bytes=model.tcb_bytes)
    model.boot.charge_boot(ctx)
    runtime = SingleContextRuntime(ctx)
    session = SingleContextSession(runtime, ShimLibc(ctx))
    token = activate_runtime(runtime)
    try:
        yield session
    finally:
        deactivate_runtime(token)
        sdk.destroy_enclave(enclave)
