"""NoSGX baseline: the native image runs directly on the host.

The paper plots this as the performance ceiling ("the most insecure
configuration").
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.core.annotations import activate_runtime, deactivate_runtime
from repro.core.app import SingleContextSession
from repro.core.rmi import SingleContextRuntime
from repro.core.shim import ShimLibc
from repro.costs.platform import Platform, fresh_platform
from repro.runtime.context import ExecutionContext, Location, RuntimeKind


@contextmanager
def native_session(
    platform: Optional[Platform] = None, name: str = "native"
) -> Iterator[SingleContextSession]:
    """Run a block as a NoSGX native image."""
    platform = platform or fresh_platform()
    ctx = ExecutionContext(platform, Location.HOST, RuntimeKind.NATIVE_IMAGE, label=name)
    runtime = SingleContextRuntime(ctx)
    session = SingleContextSession(runtime, ShimLibc(ctx))
    token = activate_runtime(runtime)
    try:
        yield session
    finally:
        deactivate_runtime(token)
