"""Baseline runners the paper compares against (§6.5, §6.6).

- :func:`native_session` — the NoSGX native image (fastest, insecure);
- :func:`host_jvm_session` — the application on a JVM outside enclaves;
- :func:`scone_jvm_session` — the unmodified application on a JVM inside
  a SCONE container's enclave (the paper's main baseline).
"""

from repro.baselines.jvm import JvmBootModel, host_jvm_session
from repro.baselines.native import native_session
from repro.baselines.scone import SconeExecutionContext, scone_jvm_session

__all__ = [
    "JvmBootModel",
    "host_jvm_session",
    "native_session",
    "SconeExecutionContext",
    "scone_jvm_session",
]
