"""HotSpot JVM cost model and the NoSGX+JVM baseline session.

The paper attributes JVM slowness relative to native images to class
loading, bytecode interpretation and dynamic compilation (§6.6); peak
throughput is comparable, so the model charges a boot phase plus a
warm-up multiplier on compute (applied by the JVM execution context).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.annotations import activate_runtime, deactivate_runtime
from repro.core.app import SingleContextSession
from repro.core.rmi import SingleContextRuntime
from repro.core.shim import ShimLibc
from repro.costs.machine import MB
from repro.costs.platform import Platform, fresh_platform
from repro.runtime.context import ExecutionContext, Location, RuntimeKind


@dataclass(frozen=True)
class JvmBootModel:
    """Boot-phase footprint of a JVM run."""

    app_classes: int = 50
    #: Resident bytes the JVM itself adds (code cache, metaspace...).
    runtime_footprint_bytes: int = 150 * MB

    def charge_boot(self, ctx: ExecutionContext) -> float:
        """Charge JVM startup + class loading to ``ctx``."""
        jvm = ctx.platform.cost_model.jvm
        ns = ctx.platform.charge_cycles("jvm.startup", jvm.startup_cycles)
        total_classes = jvm.base_classes + self.app_classes
        ns += ctx.platform.charge_cycles(
            "jvm.class_loading", total_classes * jvm.class_load_cycles
        )
        # Loading classes touches metaspace: real memory traffic, which
        # pays MEE + paging when the JVM boots inside an enclave.
        ns += ctx.memory_traffic(
            self.runtime_footprint_bytes / 6, ws_bytes=self.runtime_footprint_bytes
        )
        return ns


@contextmanager
def host_jvm_session(
    platform: Optional[Platform] = None,
    boot: JvmBootModel = JvmBootModel(),
    name: str = "jvm",
) -> Iterator[SingleContextSession]:
    """Run a block on a JVM outside any enclave (NoSGX+JVM)."""
    platform = platform or fresh_platform()
    ctx = ExecutionContext(platform, Location.HOST, RuntimeKind.JVM, label=name)
    boot.charge_boot(ctx)
    runtime = SingleContextRuntime(ctx)
    session = SingleContextSession(runtime, ShimLibc(ctx))
    token = activate_runtime(runtime)
    try:
        yield session
    finally:
        deactivate_runtime(token)
