"""Trace-driven batching of hot enclave crossings.

``repro.batching`` closes the loop the ROADMAP drew between the
observability layer (PR 1), the partition linter (PR 2) and the chaos
layer (PR 3):

- :mod:`repro.batching.ranking` — the *shared* crossing-rank heuristic
  behind both switchless-candidate detection and batching plans;
- :mod:`repro.batching.detector` — :class:`HotSiteDetector` ranks
  recorded per-routine crossing streams into sized batching plans, and
  :func:`rerank_predictions` re-orders the linter's static ``MSV003``
  predictions with a measured trace;
- :mod:`repro.batching.coalescer` — :class:`CallCoalescer` queues
  eligible proxy invocations per ``(side, routine)`` and flushes them
  through one priced batch crossing, with explicit flush triggers
  (batch size, virtual-time window, data-dependent reads, side
  switches) and fault-aware :class:`BatchEnvelope` idempotency
  metadata.

See ``docs/BATCHING.md`` for the detector → coalescer → flush-trigger
→ fault-semantics pipeline, and ``repro batch`` for the ablation.
"""

from repro.batching.coalescer import (
    BATCHABLE_ATTR,
    BatchEnvelope,
    BatchPolicy,
    BatchStats,
    CallCoalescer,
    PendingCall,
    attach_batching,
    batchable,
)
from repro.batching.detector import (
    CONFIRMED,
    STATIC_ONLY,
    TRACE_ONLY,
    HotSite,
    HotSiteDetector,
    RankedCandidate,
    rerank_predictions,
)
from repro.batching.ranking import (
    HOT_ROUTINE_HZ,
    MAX_SUGGESTED_BATCH,
    crossing_rate_hz,
    rank_hot_routines,
    suggest_batch_size,
)

__all__ = [
    "BATCHABLE_ATTR",
    "BatchEnvelope",
    "BatchPolicy",
    "BatchStats",
    "CallCoalescer",
    "PendingCall",
    "attach_batching",
    "batchable",
    "CONFIRMED",
    "STATIC_ONLY",
    "TRACE_ONLY",
    "HotSite",
    "HotSiteDetector",
    "RankedCandidate",
    "rerank_predictions",
    "HOT_ROUTINE_HZ",
    "MAX_SUGGESTED_BATCH",
    "crossing_rate_hz",
    "rank_hot_routines",
    "suggest_batch_size",
]
