"""Call coalescing: queue hot proxy invocations, flush one crossing.

Montsalvat pays ~13,100 cycles of context switch plus the GraalVM
isolate attach on *every* enclave transition (§2.1, Fig. 3/4). For a
chatty call site — N fire-and-forget invocations of the same routine in
a row — that fixed cost is paid N times for work one crossing could
carry. The :class:`CallCoalescer` elides it: eligible proxy invocations
are queued per ``(caller, target, routine)`` and flushed through a
single priced crossing that charges **one transition** (one context
switch, one isolate attach, one edge-fixed cost) plus the per-call
marshalling and relay dispatch that would have happened anyway.

Correctness rules (results must stay byte-identical to unbatched runs):

- only routines declared batchable — via :func:`batchable` on the
  method or an fnmatch pattern on the :class:`BatchPolicy` — are ever
  queued; these must be *void* (fire-and-forget) methods, enforced at
  flush when ``strict_void`` is on;
- any other crossing through the runtime (a data-dependent read, a
  proxy construction, a static relay, a GC release, a local dispatch
  on the mirror side) first drains the queue, so program order is
  preserved exactly;
- a queue older than ``window_ns`` of virtual time is drained before
  new calls join it, bounding staleness;
- a queue switching to a different ``(side, routine)`` is drained
  first — at most one batch is ever open, so cross-routine ordering
  cannot invert;
- a **single-call** flush takes the ordinary unbatched path (same
  routine name, same charges), so ``max_batch=1`` is priced identically
  to batching disabled.

Fault semantics: each multi-call batch crosses under one invocation id
with an idempotency bit that is the conjunction of its calls' — the
:class:`~repro.faults.RecoveryCoordinator` retries or refuses replay at
*batch* granularity, and per-crossing ``maybe_checkpoint()`` sealing is
amortised over the whole batch. A batch that dies mid-call loses all N
calls' effects; ``recovery.stats.calls_refused`` counts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.proxy import BATCHABLE_ATTR, HASH_ATTR
from repro.errors import BatchingError, ConfigurationError

F = Callable[..., None]


def batchable(func: F) -> F:
    """Mark a void method as safe to coalesce into a batch crossing.

    Only apply to fire-and-forget methods: the caller receives ``None``
    immediately and the effect lands when the batch flushes (still
    before any subsequent crossing, so program order holds).
    """
    setattr(func, BATCHABLE_ATTR, True)
    return func


@dataclass(frozen=True)
class BatchPolicy:
    """What to coalesce and when to force a flush."""

    #: fnmatch patterns of relay routine names eligible for batching
    #: (e.g. ``relay_Account_update_balance``, ``relay_*_put_record``).
    #: Methods decorated @batchable are eligible without a pattern.
    routines: Tuple[str, ...] = ()
    #: Flush when the open queue reaches this many calls.
    max_batch: int = 16
    #: Flush a queue older than this much virtual time before growing it.
    window_ns: float = 200_000.0
    #: Per-routine batch-size overrides as (pattern, size) pairs; first
    #: match wins. Lets a detector plan size each site independently.
    sizes: Tuple[Tuple[str, int], ...] = ()
    #: Verify at flush that every coalesced call returned None.
    strict_void: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.window_ns < 0:
            raise ConfigurationError("window_ns cannot be negative")
        for pattern, size in self.sizes:
            if size < 1:
                raise ConfigurationError(
                    f"batch size for {pattern!r} must be >= 1, got {size}"
                )

    def covers(self, routine: str) -> bool:
        return any(fnmatchcase(routine, pattern) for pattern in self.routines)

    def size_for(self, routine: str) -> int:
        for pattern, size in self.sizes:
            if fnmatchcase(routine, pattern):
                return size
        return self.max_batch

    @classmethod
    def from_hot_sites(
        cls,
        sites: Any,
        window_ns: float = 200_000.0,
        strict_void: bool = True,
    ) -> "BatchPolicy":
        """A policy batching exactly a detector's hot sites, each at
        its suggested size."""
        sites = list(sites)
        if not sites:
            return cls(routines=(), window_ns=window_ns, strict_void=strict_void)
        return cls(
            routines=tuple(site.routine for site in sites),
            sizes=tuple((site.routine, site.suggested_batch) for site in sites),
            max_batch=max(site.suggested_batch for site in sites),
            window_ns=window_ns,
            strict_void=strict_void,
        )


@dataclass(frozen=True)
class PendingCall:
    """One queued invocation, already marshalled on the caller side."""

    class_name: str
    method_name: str
    routine: str
    remote_hash: int
    encoded_args: Tuple[Any, ...]
    encoded_kwargs: Dict[str, Any]
    payload: int
    idempotent: bool
    #: Arena bytes this call staged (zero on the classic path).
    staged: int = 0
    #: Edge bytes the classic path would have copied for staged values.
    classic_payload: int = 0
    #: Borrowed views to release once the batch has crossed.
    views: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class BatchEnvelope:
    """Idempotency metadata one batch crossing carries.

    ``invocation_id`` is assigned by the runtime when the batch
    crosses; the envelope's ``idempotent`` bit is the conjunction of
    the member calls' — one non-idempotent call poisons the whole
    batch, because a mid-call loss leaves *every* member's outcome
    indeterminate.
    """

    routine: str
    calls: int
    payload: int
    idempotent: bool


@dataclass
class BatchStats:
    """What the coalescer did, by cause."""

    offered: int = 0
    enqueued: int = 0
    fallthrough: int = 0  # offered but ineligible: took the normal path
    batches: int = 0  # multi-call flush crossings
    batched_calls: int = 0  # calls carried by those crossings
    single_flushes: int = 0  # one-call queues flushed via the normal path
    largest_batch: int = 0
    #: Flush counts keyed by trigger ("batch-full", "window",
    #: "routine-switch", "side-switch", "barrier:<reason>", "explicit").
    flushes: Dict[str, int] = field(default_factory=dict)

    @property
    def crossings_saved(self) -> int:
        """Transitions elided: calls that rode an existing crossing."""
        return self.batched_calls - self.batches

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offered": self.offered,
            "enqueued": self.enqueued,
            "fallthrough": self.fallthrough,
            "batches": self.batches,
            "batched_calls": self.batched_calls,
            "single_flushes": self.single_flushes,
            "largest_batch": self.largest_batch,
            "crossings_saved": self.crossings_saved,
            "flushes": dict(sorted(self.flushes.items())),
        }


class CallCoalescer:
    """Per-runtime invocation queue with explicit flush triggers."""

    def __init__(self, runtime: Any, policy: Optional[BatchPolicy] = None) -> None:
        self.runtime = runtime
        self.policy = policy or BatchPolicy()
        self.stats = BatchStats()
        self._queue: List[PendingCall] = []
        #: (caller Side, target Side, routine) of the open queue.
        self._queue_key: Optional[Tuple[Any, Any, str]] = None
        self._opened_ns: float = 0.0

    # -- intake (called by RmiRuntime.invoke) ---------------------------------

    def offer(
        self,
        proxy: Any,
        class_name: str,
        method_name: str,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        caller: Any,
        target: Any,
        idempotent_hint: bool,
    ) -> bool:
        """Queue the invocation if eligible; returns True when queued.

        A False return means the caller must treat the invocation as a
        data-dependent crossing: drain the queue (ordering barrier) and
        dispatch it through the normal path.
        """
        self.stats.offered += 1
        routine = f"relay_{class_name}_{method_name}"
        if not self._eligible(proxy, method_name, routine):
            self.stats.fallthrough += 1
            return False
        now_ns = self.runtime.platform.clock.now_ns
        key = (caller, target, routine)
        if self._queue:
            if self._queue_key != key:
                trigger = (
                    "routine-switch"
                    if self._queue_key[:2] == key[:2]
                    else "side-switch"
                )
                self._flush(trigger)
            elif now_ns - self._opened_ns >= self.policy.window_ns:
                self._flush("window")
        arena = getattr(self.runtime, "arena", None)
        if arena is None:
            encoded_args, encoded_kwargs, payload = self.runtime._encode_call(
                args, kwargs, caller
            )
            staged = classic_payload = 0
            views: Tuple[Any, ...] = ()
        else:
            # Zero-copy path: neutral arguments are encoded ONCE into
            # the arena here; the flush reuses these regions whether the
            # queue drains as a batch or as a single call (no re-encode).
            (
                encoded_args,
                encoded_kwargs,
                payload,
                staged,
                classic_payload,
            ) = self.runtime._encode_call_staged(args, kwargs, caller)
            views = tuple(
                e[1]
                for e in encoded_args + tuple(encoded_kwargs.values())
                if e[0] == "arena"
            )
        if not self._queue:
            self._queue_key = key
            self._opened_ns = self.runtime.platform.clock.now_ns
        self._queue.append(
            PendingCall(
                class_name=class_name,
                method_name=method_name,
                routine=routine,
                remote_hash=getattr(proxy, HASH_ATTR),
                encoded_args=encoded_args,
                encoded_kwargs=encoded_kwargs,
                payload=payload,
                idempotent=self._call_idempotent(routine, idempotent_hint),
                staged=staged,
                classic_payload=classic_payload,
                views=views,
            )
        )
        self.stats.enqueued += 1
        if len(self._queue) >= self.policy.size_for(routine):
            self._flush("batch-full")
        return True

    def _eligible(self, proxy: Any, method_name: str, routine: str) -> bool:
        if self.policy.covers(routine):
            return True
        func = getattr(type(proxy), method_name, None)
        return bool(getattr(func, BATCHABLE_ATTR, False))

    def _call_idempotent(self, routine: str, hint: bool) -> bool:
        if hint:
            return True
        recovery = getattr(self.runtime, "recovery", None)
        if recovery is not None and recovery.policy.is_idempotent(routine):
            return True
        return False

    # -- flushing -------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Calls currently queued."""
        return len(self._queue)

    def flush(self) -> int:
        """Drain the queue now; returns the number of calls flushed."""
        return self._flush("explicit")

    def barrier(self, reason: str) -> int:
        """Ordering barrier: drain before a non-batchable crossing."""
        if not self._queue:
            return 0
        return self._flush(f"barrier:{reason}")

    def _flush(self, trigger: str) -> int:
        if not self._queue:
            return 0
        calls = self._queue
        caller, target, routine = self._queue_key  # type: ignore[misc]
        self._queue = []
        self._queue_key = None
        self.stats.flushes[trigger] = self.stats.flushes.get(trigger, 0) + 1
        runtime = self.runtime

        arena_bytes = sum(call.staged for call in calls)
        saved_edge = sum(call.classic_payload for call in calls)

        if len(calls) == 1:
            # Single-call batch: cross exactly like the unbatched
            # runtime (same routine name, same charges) so max_batch=1
            # is priced identically to batching disabled. Staged
            # regions written at offer() are reused as-is — a one-call
            # flush never re-encodes its payload.
            call = calls[0]
            self.stats.single_flushes += 1
            body = runtime.relay_body(
                target,
                call.remote_hash,
                call.method_name,
                call.encoded_args,
                call.encoded_kwargs,
            )
            if saved_edge:
                runtime.arena.note_saved_edge(saved_edge)
            try:
                encoded = runtime.cross_batched(
                    caller,
                    target,
                    call.routine,
                    body,
                    call.payload,
                    idempotent=call.idempotent,
                    calls=1,
                    arena_bytes=arena_bytes,
                )
            finally:
                self._release_views(calls)
            self._accept_result(call, runtime._decode_value(encoded, caller))
            return 1

        envelope = BatchEnvelope(
            routine=routine,
            calls=len(calls),
            payload=sum(call.payload for call in calls),
            idempotent=all(call.idempotent for call in calls),
        )
        bodies = [
            runtime.relay_body(
                target,
                call.remote_hash,
                call.method_name,
                call.encoded_args,
                call.encoded_kwargs,
            )
            for call in calls
        ]

        def run_batch() -> Tuple[Any, ...]:
            return tuple(body() for body in bodies)

        batch_name = f"batch_{calls[0].class_name}_{calls[0].method_name}"
        obs = runtime.platform.obs
        span = None
        if obs is not None:
            span = obs.tracer.start_span(
                "rmi.batch_flush",
                attrs={
                    "routine": routine,
                    "calls": envelope.calls,
                    "trigger": trigger,
                    "idempotent": envelope.idempotent,
                },
            )
        if saved_edge:
            runtime.arena.note_saved_edge(saved_edge)
        try:
            encoded_results = runtime.cross_batched(
                caller,
                target,
                batch_name,
                run_batch,
                envelope.payload,
                idempotent=envelope.idempotent,
                calls=envelope.calls,
                arena_bytes=arena_bytes,
            )
        finally:
            self._release_views(calls)
            if span is not None:
                obs.tracer.end_span(span)
        self.stats.batches += 1
        self.stats.batched_calls += envelope.calls
        self.stats.largest_batch = max(self.stats.largest_batch, envelope.calls)
        if obs is not None:
            obs.metrics.counter("rmi.batch.flushes").inc()
            obs.metrics.counter("rmi.batch.calls").inc(envelope.calls)
            obs.metrics.counter("rmi.batch.crossings_saved").inc(
                envelope.calls - 1
            )
            obs.metrics.histogram("rmi.batch.size").observe(envelope.calls)
        for call, encoded in zip(calls, encoded_results):
            self._accept_result(call, runtime._decode_value(encoded, caller))
        return envelope.calls

    @staticmethod
    def _release_views(calls: List[PendingCall]) -> None:
        """Return staged regions to the arena after the batch crossed.

        Runs whether the crossing succeeded or faulted: the recovery
        coordinator's retry loop sits *inside* the crossing, so by the
        time control returns here every replay that will ever read
        these regions has already run. The last release reclaims the
        arena (bump-pointer rewind + generation bump).
        """
        for call in calls:
            for view in call.views:
                view.release()

    def _accept_result(self, call: PendingCall, result: Any) -> None:
        if result is None or not self.policy.strict_void:
            return
        raise BatchingError(
            f"batched routine {call.routine!r} returned {result!r}; only "
            "void (fire-and-forget) methods may be coalesced — the caller "
            "already received None. Remove it from the batch policy or "
            "drop its @batchable mark."
        )

    # -- lifecycle ------------------------------------------------------------

    def detach(self) -> int:
        """Drain the queue and uninstall from the runtime."""
        flushed = self.flush()
        if getattr(self.runtime, "batcher", None) is self:
            self.runtime.batcher = None
        return flushed


def attach_batching(
    session: Any, policy: Optional[BatchPolicy] = None
) -> CallCoalescer:
    """Install a :class:`CallCoalescer` on a running session's runtime.

    Returns the coalescer; call :meth:`CallCoalescer.detach` (or let
    the session's ``start()`` block exit) to drain and uninstall it.
    """
    coalescer = CallCoalescer(session.runtime, policy)
    session.runtime.batcher = coalescer
    return coalescer
