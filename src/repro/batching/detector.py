"""Trace-driven hot-site detection and static-prediction re-ranking.

The detector consumes per-routine crossing profiles — either live from
a :class:`~repro.sgx.profiler.TransitionProfiler` or replayed from a
recorded trace — and answers two questions:

1. **Which call sites should the coalescer batch?**
   :meth:`HotSiteDetector.detect` ranks routines with the shared
   heuristic (:mod:`repro.batching.ranking`) and attaches a suggested
   batch size derived from the observed rate and the flush window.

2. **Were the linter's static predictions right?**
   :func:`rerank_predictions` merges ``MSV003``
   ``predicted_candidates()`` with a recorded trace: routines the trace
   confirms move to the front in *measured-cost* order, predictions the
   trace never saw keep their static order at the tail, and hot
   routines the estimator missed (recursion, externally-driven loops)
   are surfaced as ``trace-only``. This closes the loop between
   ``repro.analysis`` (static) and ``repro.obs`` (dynamic).

Profiles are duck-typed against
:class:`~repro.sgx.profiler.RoutineProfile`; nothing here imports the
profiler or analysis layers, so those layers may import this one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.batching.ranking import (
    HOT_ROUTINE_HZ,
    MAX_SUGGESTED_BATCH,
    crossing_rate_hz,
    rank_hot_routines,
    suggest_batch_size,
)

#: Where a candidate's evidence came from.
CONFIRMED = "confirmed"  # predicted statically AND observed hot
STATIC_ONLY = "static-only"  # predicted, never observed hot
TRACE_ONLY = "trace-only"  # observed hot, not predicted


@dataclass(frozen=True)
class HotSite:
    """One chatty crossing site, ranked and sized for batching."""

    routine: str
    kind: str  # "ecall" | "ocall"
    calls: int
    total_ns: float
    rate_hz: float
    mean_payload: float
    suggested_batch: int

    @property
    def key(self) -> Tuple[str, str]:
        return (self.kind, self.routine)


@dataclass(frozen=True)
class RankedCandidate:
    """A switchless/batching candidate after static+dynamic merging."""

    profile: Any  # RoutineProfile-shaped (dynamic if observed, else static)
    source: str  # CONFIRMED | STATIC_ONLY | TRACE_ONLY
    predicted_calls: int
    observed_calls: int
    suggested_batch: int

    @property
    def routine(self) -> str:
        return self.profile.name

    @property
    def kind(self) -> str:
        return self.profile.kind


class HotSiteDetector:
    """Ranks crossing profiles into a batching plan."""

    def __init__(
        self,
        min_rate_hz: float = HOT_ROUTINE_HZ,
        window_ns: float = 200_000.0,
        max_batch: int = MAX_SUGGESTED_BATCH,
    ) -> None:
        self.min_rate_hz = min_rate_hz
        self.window_ns = window_ns
        self.max_batch = max_batch

    def detect(self, profiles: Sequence[Any], elapsed_s: float) -> List[HotSite]:
        """Hot sites among ``profiles``, hottest first."""
        sites = []
        for profile in rank_hot_routines(
            profiles, elapsed_s, min_rate_hz=self.min_rate_hz
        ):
            sites.append(
                HotSite(
                    routine=profile.name,
                    kind=profile.kind,
                    calls=profile.calls,
                    total_ns=profile.total_ns,
                    rate_hz=crossing_rate_hz(profile.calls, elapsed_s),
                    mean_payload=profile.mean_payload,
                    suggested_batch=suggest_batch_size(
                        profile.calls,
                        elapsed_s,
                        window_ns=self.window_ns,
                        max_batch=self.max_batch,
                    ),
                )
            )
        return sites

    def from_profiler(self, profiler: Any) -> List[HotSite]:
        """Hot sites from a live :class:`TransitionProfiler`."""
        return self.detect(profiler.profiles(), profiler.elapsed_s)

    def report(self, sites: Sequence[HotSite]) -> str:
        lines = [
            f"{'routine':<42} {'kind':<6} {'calls':>8} {'rate_hz':>10} "
            f"{'total_ms':>10} {'batch':>6}"
        ]
        for site in sites:
            lines.append(
                f"{site.routine:<42} {site.kind:<6} {site.calls:>8} "
                f"{site.rate_hz:>10.0f} {site.total_ns / 1e6:>10.3f} "
                f"{site.suggested_batch:>6}"
            )
        return "\n".join(lines)


def rerank_predictions(
    static: Sequence[Any],
    dynamic: Sequence[Any],
    elapsed_s: float,
    min_rate_hz: float = HOT_ROUTINE_HZ,
    window_ns: float = 200_000.0,
    max_batch: int = MAX_SUGGESTED_BATCH,
    detector: Optional[HotSiteDetector] = None,
) -> List[RankedCandidate]:
    """Re-rank MSV003 predictions with a recorded trace.

    ``static`` is ``LintResult.predicted_candidates()``; ``dynamic`` is
    a recorded per-routine profile list (e.g.
    ``TransitionProfiler.profiles()``) spanning ``elapsed_s`` virtual
    seconds. Returns candidates in trace-informed order:

    1. routines the trace observed hot, by *measured* total crossing
       time (confirmed predictions and trace-only discoveries mixed —
       the measured cost, not the prediction, decides priority);
    2. predictions the trace never confirmed, in their static order.
    """
    if detector is None:
        detector = HotSiteDetector(
            min_rate_hz=min_rate_hz, window_ns=window_ns, max_batch=max_batch
        )
    static_by_key: Dict[Tuple[str, str], Any] = {
        (p.kind, p.name): p for p in static
    }
    hot = detector.detect(dynamic, elapsed_s)
    hot_keys = {site.key for site in hot}
    dynamic_by_key = {(p.kind, p.name): p for p in dynamic}

    ranked: List[RankedCandidate] = []
    for site in hot:
        predicted = static_by_key.get(site.key)
        ranked.append(
            RankedCandidate(
                profile=dynamic_by_key[site.key],
                source=CONFIRMED if predicted is not None else TRACE_ONLY,
                predicted_calls=predicted.calls if predicted is not None else 0,
                observed_calls=site.calls,
                suggested_batch=site.suggested_batch,
            )
        )
    for key, profile in static_by_key.items():
        if key in hot_keys:
            continue
        ranked.append(
            RankedCandidate(
                profile=profile,
                source=STATIC_ONLY,
                predicted_calls=profile.calls,
                observed_calls=(
                    dynamic_by_key[key].calls if key in dynamic_by_key else 0
                ),
                # No observed rate to size from: treat the static call
                # estimate as one window's worth of traffic.
                suggested_batch=suggest_batch_size(
                    profile.calls, 1.0, window_ns=1e9, max_batch=max_batch
                ),
            )
        )
    return ranked
