"""The shared crossing-rank heuristic (sgx-perf's "frequent short calls").

Both elision strategies this codebase knows — switchless dispatch
(:meth:`repro.sgx.profiler.TransitionProfiler.switchless_candidates`)
and trace-driven batching (:class:`repro.batching.detector.HotSiteDetector`)
— start from the same question: *which routines cross the boundary
often enough that shaving the per-crossing fixed cost would pay?* This
module holds that heuristic once, so the two consumers cannot drift:

- a routine qualifies when its crossing rate reaches
  :data:`HOT_ROUTINE_HZ` calls per virtual second;
- qualifying routines rank by total time spent crossing (the paper's
  Fig. 3/4 bottleneck), with calls and name as deterministic
  tie-breakers.

Profiles are duck-typed against
:class:`~repro.sgx.profiler.RoutineProfile` (``name``, ``kind``,
``calls``, ``total_ns``, ``mean_payload``) so this module imports
nothing from the profiler layer.
"""

from __future__ import annotations

from typing import Any, List, Sequence

#: A routine crossing more often than this per virtual second is worth
#: eliding (switchless dispatch or batching). The same constant the
#: profiler's switchless rule has always used.
HOT_ROUTINE_HZ = 1_000.0

#: Never suggest coalescing more calls than this into one crossing:
#: past ~64 the fixed cost is fully amortised and latency-to-first-
#: result and the mid-batch blast radius keep growing.
MAX_SUGGESTED_BATCH = 64


def crossing_rate_hz(calls: int, elapsed_s: float) -> float:
    """Calls per virtual second, guarded against a zero-length window."""
    return calls / max(1e-9, elapsed_s)


def rank_hot_routines(
    profiles: Sequence[Any],
    elapsed_s: float,
    min_rate_hz: float = HOT_ROUTINE_HZ,
) -> List[Any]:
    """Profiles crossing at ``min_rate_hz`` or more, hottest first.

    Ordering is total crossing time descending, then call count
    descending, then ``(kind, name)`` — fully deterministic so reports
    and fingerprints never flap between runs.
    """
    hot = [
        profile
        for profile in profiles
        if crossing_rate_hz(profile.calls, elapsed_s) >= min_rate_hz
    ]
    hot.sort(key=lambda p: (-p.total_ns, -p.calls, p.kind, p.name))
    return hot


def suggest_batch_size(
    calls: int,
    elapsed_s: float,
    window_ns: float,
    max_batch: int = MAX_SUGGESTED_BATCH,
) -> int:
    """Batch size for a routine, from its observed rate and the flush window.

    The coalescer flushes a queue no older than ``window_ns``, so the
    natural batch size is the number of calls expected inside one
    window, rounded up to a power of two and clamped to
    ``[1, max_batch]``.
    """
    expected = crossing_rate_hz(calls, elapsed_s) * (window_ns / 1e9)
    size = 1
    while size < expected and size < max_batch:
        size *= 2
    return max(1, min(size, max_batch))
