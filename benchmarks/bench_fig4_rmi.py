"""Fig. 4a — RMI latency; Fig. 4b — serialization impact."""

from conftest import run_once

from repro.experiments.common import orders_of_magnitude
from repro.experiments.fig4_rmi import run_fig4a, run_fig4b

COUNTS = (10_000, 50_000, 100_000)
LIST_SIZES = tuple(range(10_000, 100_001, 10_000))


def test_fig4a_method_invocations(benchmark, record_table):
    table = run_once(benchmark, run_fig4a, counts=COUNTS)
    record_table("fig4a_rmi", table.format(), table=table)

    out_in = table.mean_ratio("proxy-out->in", "concrete-out")
    in_out = table.mean_ratio("proxy-in->out", "concrete-in")
    assert 3.0 <= orders_of_magnitude(out_in) <= 4.7
    assert 2.8 <= orders_of_magnitude(in_out) <= 4.2
    # The serialized variants are strictly slower.
    assert table.mean_ratio("proxy-out->in+s", "proxy-out->in") > 1.0
    assert table.mean_ratio("proxy-in->out+s", "proxy-in->out") > 1.0


def test_fig4b_serialization(benchmark, record_table):
    table = run_once(
        benchmark, run_fig4b, list_sizes=LIST_SIZES, invocations=10_000
    )
    record_table("fig4b_serialization", table.format(), table=table)

    # Paper: ~10x for in-enclave RMIs, ~3x for out-of-enclave RMIs.
    mid = LIST_SIZES[len(LIST_SIZES) // 3]
    in_ratio = table.get("proxy-in->out+s").y_at(mid) / table.get(
        "proxy-in->out"
    ).y_at(mid)
    out_ratio = table.get("proxy-out->in+s").y_at(mid) / table.get(
        "proxy-out->in"
    ).y_at(mid)
    assert 5.0 <= in_ratio <= 25.0
    assert 1.8 <= out_ratio <= 8.0
    assert in_ratio > out_ratio * 2  # serialization hurts the enclave more
