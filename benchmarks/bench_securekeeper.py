"""Extra benchmark — SecureKeeper-style split and the chatty-RMI lesson."""

from conftest import run_once

from repro.experiments.securekeeper_exp import run_securekeeper

ENTRY_COUNTS = (500, 1_000, 2_000)


def test_securekeeper_partitioning(benchmark, record_table):
    table = run_once(benchmark, run_securekeeper, entry_counts=ENTRY_COUNTS)
    record_table("securekeeper", table.format(y_format="{:.4f}"), table=table)

    # Per-operation RMIs are 10^2 us (§6.3): plain partitioning loses
    # to running everything in the enclave on this chatty workload...
    assert table.mean_ratio("Part", "Unpart (all in enclave)") > 3.0
    # ...switchless calls (§7) recover it: cheaper than hardware
    # transitions by ~an order and at least on par with whole-in-enclave.
    assert table.mean_ratio("Part", "Part+switchless") > 5.0
    assert table.mean_ratio("Unpart (all in enclave)", "Part+switchless") > 1.0
    # The insecure ceiling stays fastest.
    assert table.get("NoSGX").mean() < table.get("Part+switchless").mean()
