"""TCB comparison — the paper's §1/§3 motivation, quantified.

Not a numbered figure, but the argument the whole system rests on:
partitioning with a shim keeps the trusted computing base orders of
magnitude below LibOS/SCONE deployments.
"""

from conftest import run_once

from repro.apps.bank import BANK_CLASSES
from repro.core import Partitioner, PartitionOptions
from repro.core.tcb import compare, partitioned_tcb, scone_tcb, unpartitioned_tcb
from repro.graal.buildstats import partitioned_build_stats


def _build_reports():
    partitioner = Partitioner(PartitionOptions(name="tcb_bench"))
    part_app = partitioner.partition(BANK_CLASSES, main="Main.main")
    unpart_app = partitioner.unpartitioned(list(BANK_CLASSES))
    reports = [
        partitioned_tcb(part_app),
        unpartitioned_tcb(unpart_app),
        scone_tcb(app_code_bytes=unpart_app.image.code_size_bytes),
    ]
    return part_app, reports


def test_tcb_comparison(benchmark, record_table):
    part_app, reports = run_once(benchmark, _build_reports)

    trusted_stats, untrusted_stats = partitioned_build_stats(part_app)
    text = "\n\n".join(
        [compare(reports)]
        + [report.format() for report in reports]
        + [trusted_stats.format(), untrusted_stats.format()]
    )
    record_table("tcb_comparison", text)

    partitioned, unpartitioned, scone = reports
    # For a tiny app the generated relays roughly offset the pruned
    # untrusted classes; the TCB never grows meaningfully.
    assert partitioned.total_bytes <= unpartitioned.total_bytes * 1.05
    # The paper's headline: LibOS/JVM stacks are orders of magnitude
    # larger than the partitioned TCB.
    assert scone.total_bytes > partitioned.total_bytes * 30
    # Reachability pruning removed the unreachable Person proxy.
    assert "Person" in trusted_stats.pruned_proxy_classes
