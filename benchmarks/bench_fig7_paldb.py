"""Fig. 7 — PalDB read/write times for partitioned native images."""

from conftest import run_once

from repro.experiments.fig7_paldb import run_fig7

KEY_COUNTS = (10_000, 30_000, 50_000, 70_000, 90_000)


def test_fig7_paldb(benchmark, record_table):
    table = run_once(benchmark, run_fig7, key_counts=KEY_COUNTS)
    record_table("fig7_paldb", table.format(y_format="{:.3f}"), table=table)

    # Paper: RTWU ~2.5x and RUWT ~1.04x faster than the unpartitioned
    # image; NoSGX is the (insecure) ceiling.
    rtwu_gain = table.mean_ratio("NoPart", "Part(RTWU)")
    ruwt_gain = table.mean_ratio("NoPart", "Part(RUWT)")
    assert 1.8 <= rtwu_gain <= 3.5
    assert 0.95 <= ruwt_gain <= 1.3
    assert table.mean_ratio("NoPart", "NoSGX") > rtwu_gain
    # The ocall asymmetry behind it (paper: ~23x more ocalls in RUWT).
    assert "ocalls RUWT/RTWU" in table.notes
