"""Extra benchmark — the price of obliviousness (related work [60])."""

from conftest import run_once

import numpy as np

from repro.apps.oblivious import OBLIVIOUS_CLASSES, ObliviousTable
from repro.baselines import native_session
from repro.core import Partitioner, PartitionOptions
from repro.experiments.common import ExperimentTable

SIZES = (512, 1_024, 2_048, 4_096)


def run_oblivious_cost(sizes=SIZES) -> ExperimentTable:
    table = ExperimentTable(
        title="Oblivious operators — sort cost vs input size",
        x_label="rows",
        y_label="time (s)",
        notes="bitonic network: O(n log^2 n); access trace leaks only n",
    )
    in_enclave = table.new_series("oblivious sort (enclave)")
    outside = table.new_series("oblivious sort (host)")
    for n in sizes:
        values = list(np.random.RandomState(n).standard_normal(n))

        app = Partitioner(PartitionOptions(name=f"obl_{n}")).partition(
            list(OBLIVIOUS_CLASSES)
        )
        with app.start() as session:
            oblivious = ObliviousTable(list(values))
            span = session.platform.measure()
            result = oblivious.sort()
            in_enclave.add(n, span.elapsed_s())
            assert result == sorted(values)

        with native_session() as session:
            plain = ObliviousTable(list(values))
            span = session.platform.measure()
            plain.sort()
            outside.add(n, span.elapsed_s())
    return table


def test_oblivious_cost(benchmark, record_table):
    table = run_once(benchmark, run_oblivious_cost, sizes=SIZES)
    record_table("oblivious_cost", table.format(y_format="{:.6f}"), table=table)

    enclave = table.get("oblivious sort (enclave)").ys()
    host = table.get("oblivious sort (host)").ys()
    # Superlinear growth (n log^2 n): 8x the rows, >8x the time on the
    # host (the enclave's fixed RMI cost flattens its small end).
    assert host[-1] > host[0] * 8
    assert enclave[-1] > enclave[0] * 5
    # The enclave pays MEE on the network's data movement.
    for inside, out in zip(enclave, host):
        assert inside > out
