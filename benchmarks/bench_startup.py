"""Extra benchmark — startup time/footprint and build-time init (§2.2)."""

from conftest import run_once

from repro.experiments.startup import run_build_time_init, run_startup


def test_startup_native_image_vs_jvm(benchmark, record_table):
    table = run_once(benchmark, run_startup)
    record_table("startup", table.format(y_format="{:.4f}"), table=table)

    # §2.2's claims: quicker startup, lower footprint.
    assert table.get("Part-NI").y_at(0) < table.get("NoSGX+JVM").y_at(0) / 100
    assert table.get("NoPart-NI").y_at(0) < table.get("SCONE+JVM").y_at(0) / 100
    assert table.get("Part-NI").y_at(1) < table.get("NoSGX+JVM").y_at(1) / 10
    # In-enclave JVM boots even slower than the host JVM.
    assert table.get("SCONE+JVM").y_at(0) > table.get("NoSGX+JVM").y_at(0)


def test_build_time_initialisation(benchmark, record_table):
    table = run_once(benchmark, run_build_time_init)
    record_table("build_time_init", table.format(y_format="{:.4f}"), table=table)

    series = table.get("startup seconds")
    # Initialise once at build: startup skips the parsing entirely.
    assert series.y_at(0) < series.y_at(1) / 20
