"""Extra benchmark — VC3-style MapReduce across deployments ([44])."""

from conftest import run_once

from repro.experiments.mapreduce_exp import run_mapreduce

LINE_COUNTS = (200, 600, 1_200)


def test_mapreduce_deployments(benchmark, record_table):
    table = run_once(benchmark, run_mapreduce, line_counts=LINE_COUNTS)
    record_table("mapreduce", table.format(y_format="{:.4f}"), table=table)

    part = table.get("Part (map/reduce in enclave)")
    unpart = table.get("Unpart (all in enclave)")
    nosgx = table.get("NoSGX")
    scone = table.get("SCONE+JVM")

    # Coarse-grained partitioning costs little: within a small factor of
    # the insecure ceiling (contrast with the chatty SecureKeeper split,
    # bench_securekeeper.py). Its real dividend is the TCB (bench_tcb).
    assert table.mean_ratio("Part (map/reduce in enclave)", "NoSGX") < 3.0
    # Both native-image deployments crush the SCONE-style whole stack.
    assert table.mean_ratio("SCONE+JVM", "Part (map/reduce in enclave)") > 5.0
    assert table.mean_ratio("SCONE+JVM", "Unpart (all in enclave)") > 5.0
    # Partitioned and unpartitioned are in the same league here: the
    # handful of coarse relays roughly offsets the enclave's framework
    # overhead at this scale.
    ratio = table.mean_ratio(
        "Part (map/reduce in enclave)", "Unpart (all in enclave)"
    )
    assert 0.6 <= ratio <= 2.5
