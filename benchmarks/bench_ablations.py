"""Ablation benchmarks over Montsalvat's design choices (DESIGN.md §4)."""

from conftest import run_once

from repro.experiments.ablations import (
    run_annotation_granularity_ablation,
    run_gc_period_ablation,
    run_hash_ablation,
    run_mee_sensitivity,
    run_switchless_ablation,
)


def test_ablation_switchless(benchmark, record_table):
    table = run_once(
        benchmark, run_switchless_ablation, invocation_counts=(1_000, 5_000, 10_000)
    )
    record_table("ablation_switchless", table.format(y_format="{:.4f}"), table=table)
    # Transition-less calls pay off massively for chatty RMIs (§7).
    gain = table.mean_ratio("hardware transitions", "switchless")
    assert gain > 10.0


def test_ablation_hash_strategy(benchmark, record_table):
    table = run_once(benchmark, run_hash_ablation, n_objects=5_000)
    record_table("ablation_hash", table.format(y_format="{:.4f}"), table=table)
    identity = table.get("identity-hash").mean()
    md5 = table.get("md5-hash").mean()
    # MD5 costs more, but the transition dominates: < 2% overhead.
    assert identity < md5 < identity * 1.02


def test_ablation_mee_sensitivity(benchmark, record_table):
    table = run_once(
        benchmark, run_mee_sensitivity, multipliers=(2.0, 4.0, 8.5, 12.0), n_classes=30
    )
    record_table("ablation_mee", table.format(y_format="{:.2f}"), table=table)
    slowdowns = table.get("enclave slowdown").ys()
    # The Fig. 6 spread grows monotonically with the MEE penalty.
    assert all(a < b for a, b in zip(slowdowns, slowdowns[1:]))
    assert slowdowns[0] > 1.0


def test_ablation_annotation_granularity(benchmark, record_table):
    table = run_once(
        benchmark,
        run_annotation_granularity_ablation,
        state_bytes_sweep=(64, 512, 4_096, 32_768, 131_072),
        calls=1_000,
    )
    record_table("ablation_granularity", table.format(y_format="{:.4f}"), table=table)
    class_level = table.get("class-level (Montsalvat)")
    method_level = table.get("method-level (Uranus-style)")
    # Method-level state shipping always costs more...
    for (x, cl), (_, ml) in zip(class_level.points, method_level.points):
        assert ml > cl, x
    # ...and the gap grows with the object's state size (§5.1).
    gaps = [
        ml / cl for (_, cl), (_, ml) in zip(class_level.points, method_level.points)
    ]
    assert gaps == sorted(gaps)
    assert gaps[-1] > 2.0


def test_ablation_gc_period(benchmark, record_table):
    table = run_once(
        benchmark, run_gc_period_ablation, periods_s=(0.25, 0.5, 1.0, 2.0, 4.0)
    )
    record_table("ablation_gc_period", table.format(y_format="{:.0f}"), table=table)
    retention = table.get("peak stale mirrors").ys()
    scans = table.get("helper scans").ys()
    # Longer periods retain more dead mirrors but scan less.
    assert all(a <= b for a, b in zip(retention, retention[1:]))
    assert all(a >= b for a, b in zip(scans, scans[1:]))
