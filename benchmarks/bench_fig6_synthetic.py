"""Fig. 6 — synthetic application runtime vs %untrusted classes."""

from conftest import run_once

from repro.experiments.fig6_synthetic import run_fig6

PERCENTAGES = tuple(range(0, 101, 10))


def test_fig6_synthetic(benchmark, record_table):
    table = run_once(
        benchmark, run_fig6, percentages=PERCENTAGES, n_classes=100
    )
    record_table("fig6_synthetic", table.format(y_format="{:.4f}"), table=table)

    for name in ("cpu intensive", "io intensive"):
        series = table.get(name)
        ys = series.ys()
        # Monotone improvement as classes leave the enclave (small
        # tolerance for RMI noise between adjacent points).
        for earlier, later in zip(ys, ys[1:]):
            assert later <= earlier * 1.05
        # All-enclave vs none-in-enclave spread is substantial.
        assert ys[0] / ys[-1] >= 3.0
