"""Fig. 3 — proxy vs concrete object creation latency."""

from conftest import run_once

from repro.experiments.common import orders_of_magnitude
from repro.experiments.fig3_proxy_creation import run_fig3

COUNTS = (10_000, 40_000, 70_000, 100_000)


def test_fig3_proxy_creation(benchmark, record_table):
    table = run_once(benchmark, run_fig3, counts=COUNTS)
    record_table("fig3_proxy_creation", table.format(), table=table)

    # Shape: proxy creation is 3-4 orders of magnitude above concrete.
    out_in = table.mean_ratio("proxy-out->in", "concrete-out")
    in_out = table.mean_ratio("proxy-in->out", "concrete-in")
    assert 3.0 <= orders_of_magnitude(out_in) <= 4.7
    assert 3.0 <= orders_of_magnitude(in_out) <= 4.5
    assert in_out < out_in  # the paper's 3-vs-4-orders asymmetry
