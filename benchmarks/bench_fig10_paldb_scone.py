"""Fig. 10 — PalDB native images vs PalDB on a JVM in SCONE."""

from conftest import run_once

from repro.experiments.fig7_paldb import run_fig10

KEY_COUNTS = (20_000, 60_000, 100_000)


def test_fig10_paldb_scone(benchmark, record_table):
    table = run_once(benchmark, run_fig10, key_counts=KEY_COUNTS)
    record_table("fig10_paldb_scone", table.format(y_format="{:.3f}"), table=table)

    # Paper averages: RTWU 6.6x, RUWT 2.8x, NoPart 2.6x over SCONE+JVM.
    # JVM boot amortises with scale, so assert at the largest count.
    largest = KEY_COUNTS[-1]
    scone = table.get("SCONE+JVM").y_at(largest)
    assert 3.0 <= scone / table.get("Part(RTWU)").y_at(largest) <= 9.0
    assert 1.5 <= scone / table.get("Part(RUWT)").y_at(largest) <= 4.0
    assert 1.5 <= scone / table.get("NoPart").y_at(largest) <= 4.0
    # Ordering: NoSGX < RTWU < RUWT ~ NoPart < SCONE.
    assert (
        table.get("NoSGX").y_at(largest)
        < table.get("Part(RTWU)").y_at(largest)
        < table.get("Part(RUWT)").y_at(largest)
        < scone
    )
