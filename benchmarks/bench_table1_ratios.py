"""Table 1 — SGX-NI latency gain over SCONE+JVM, per kernel."""

from conftest import run_once

from repro.apps.specjvm.kernels import KERNEL_ORDER
from repro.experiments.fig12_specjvm import PAPER_TABLE1, run_table1

#: Accepted band around each paper ratio (multiplicative).
BAND = 1.45


def test_table1_ratios(benchmark, record_table):
    ratios = run_once(benchmark, run_table1, kernels=KERNEL_ORDER)

    lines = ["Table 1 — latency gain of SGX-NI over SCONE+JVM",
             f"{'kernel':<14}{'measured':>10}{'paper':>10}"]
    for kernel in KERNEL_ORDER:
        lines.append(
            f"{kernel:<14}{ratios[kernel]:>9.2f}x{PAPER_TABLE1[kernel]:>9.2f}x"
        )
    record_table("table1_ratios", "\n".join(lines))

    for kernel in KERNEL_ORDER:
        paper = PAPER_TABLE1[kernel]
        measured = ratios[kernel]
        assert paper / BAND <= measured <= paper * BAND, (kernel, measured)
    # The qualitative headline: Monte_Carlo is the only inversion.
    assert ratios["monte_carlo"] < 1.0
    for kernel in KERNEL_ORDER:
        if kernel != "monte_carlo":
            assert ratios[kernel] > 1.0
