"""Fig. 9 — partitioned GraphChi PageRank across graph sizes/shards."""

from conftest import run_once

from repro.experiments.fig9_graphchi import run_fig9

GRAPHS = ((6_250, 25_000), (12_500, 50_000), (25_000, 100_000))
SHARDS = (1, 2, 3, 4, 5, 6)


def test_fig9_graphchi(benchmark, record_table):
    results = run_once(
        benchmark, run_fig9, graphs=GRAPHS, shard_counts=SHARDS, iterations=5
    )
    text = "\n\n".join(
        table.format(y_format="{:.3f}") for table in results.values()
    )
    record_table("fig9_graphchi", text, table=list(results.values()))

    for (n_vertices, n_edges), table in results.items():
        gain = table.mean_ratio("NoPart-NI", "Part-NI")
        # Paper: ~1.2x average gain from partitioning, all graph sizes.
        assert 1.05 <= gain <= 1.6, (n_vertices, gain)
        # Partitioned sharding returns to native-level cost.
        shard_ratio = table.mean_ratio("Part-NI:sharding", "NoSGX-NI:sharding")
        assert 0.9 <= shard_ratio <= 1.2
        # The unpartitioned image pays enclave costs in the sharder.
        assert table.mean_ratio("NoPart-NI:sharding", "NoSGX-NI:sharding") > 1.4
