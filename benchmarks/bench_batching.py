"""Extra benchmark — trace-driven batching of hot enclave crossings."""

from conftest import run_once

from repro.experiments.batching_exp import run_batching

BATCH_SIZES = (None, 1, 4, 16, 64)
DURABILITY_SIZES = (None, 1, 2, 4, 8, 16)


def test_batching_ablation(benchmark, record_table):
    report = run_once(
        benchmark,
        run_batching,
        batch_sizes=BATCH_SIZES,
        durability_sizes=DURABILITY_SIZES,
    )
    record_table(
        "batching",
        report.format(),
        table=[report.speedup, report.crossings, report.durability],
    )

    # Coalescing must pay for itself on chatty workloads: one transition
    # (and one isolate attach) per batch instead of per call.
    assert report.best_speedup("bank") > 10.0
    assert report.best_speedup("paldb") > 4.0
    assert report.best_speedup("securekeeper") > 2.0
    # A batch size of 1 routes through the unbatched path: the ledger
    # and results must be byte-identical to batching disabled.
    assert report.identical == {
        "bank": True,
        "paldb": True,
        "securekeeper": True,
    }
    # The durability trade: one mid-call loss of a non-idempotent batch
    # of N silently destroys N-1 acknowledged updates (monotone in N).
    lost = [r.lost_acked for r in report.durability_results]
    assert lost == sorted(lost)
    assert lost[0] == 0 and lost[-1] > 0
