"""Fig. 12 — SPECjvm2008 micro-benchmarks in four configurations."""

from conftest import run_once

from repro.apps.specjvm.kernels import KERNEL_ORDER
from repro.experiments.fig12_specjvm import run_fig12


def test_fig12_specjvm(benchmark, record_table):
    table = run_once(benchmark, run_fig12, kernels=KERNEL_ORDER)
    record_table("fig12_specjvm", table.format(y_format="{:.2f}"), table=table)

    ni = table.get("NoSGX-NI")
    sgx_ni = table.get("SGX-NI")
    scone = table.get("SCONE+JVM")
    for index, kernel in enumerate(KERNEL_ORDER):
        # SGX always costs something over NoSGX for the same image.
        assert sgx_ni.y_at(index) > ni.y_at(index)
        if kernel == "monte_carlo":
            # The one inversion: the JVM's GC wins in the enclave.
            assert scone.y_at(index) < sgx_ni.y_at(index)
        else:
            assert scone.y_at(index) > sgx_ni.y_at(index)
