"""Fig. 11 — GraphChi native images vs GraphChi on a JVM in SCONE."""

from conftest import run_once

from repro.experiments.fig9_graphchi import run_fig11

SHARDS = (1, 2, 3, 4, 5, 6)


def test_fig11_graphchi_scone(benchmark, record_table):
    table = run_once(
        benchmark,
        run_fig11,
        n_vertices=25_000,
        n_edges=100_000,
        shard_counts=SHARDS,
        iterations=5,
    )
    record_table("fig11_graphchi_scone", table.format(y_format="{:.3f}"), table=table)

    # Paper: partitioned image ~2.2x faster than SCONE+JVM; the
    # unpartitioned image ~1.7x.
    part_gain = table.mean_ratio("SCONE+JVM", "Part-NI")
    nopart_gain = table.mean_ratio("SCONE+JVM", "NoPart-NI")
    assert 1.7 <= part_gain <= 3.0
    assert 1.3 <= nopart_gain <= 2.3
    assert part_gain > nopart_gain
    # NoSGX+JVM sits between the native images and SCONE.
    assert table.mean_ratio("SCONE+JVM", "NoSGX+JVM") > 1.0
