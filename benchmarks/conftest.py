"""Benchmark harness support.

Each ``bench_*``/``test_*`` function regenerates one of the paper's
figures or tables at (scaled) paper size, prints it, and stores the
text under ``benchmarks/results/`` so the artifacts survive the run.
pytest-benchmark wraps the experiment for wall-clock reporting; every
experiment runs a single round — the numbers that matter are the
*virtual* times inside the tables.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture()
def record_table():
    """Print an ExperimentTable and persist it under benchmarks/results."""

    def _record(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _record


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
