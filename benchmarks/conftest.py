"""Benchmark harness support.

Each ``bench_*``/``test_*`` function regenerates one of the paper's
figures or tables at (scaled) paper size, prints it, and stores the
artifacts under ``benchmarks/results/``:

- ``<name>.txt`` — the human-readable table (as before);
- ``<name>.json`` — a machine-readable run artifact (table rows, the
  merged cost-ledger snapshot, and the observability metrics of the
  run), so the benchmark trajectory is diffable across PRs.

A :class:`~repro.obs.recorder.RunRecorder` is active for every
benchmark, attaching the span tracer + metrics registry to each
platform the experiment creates. pytest-benchmark wraps the experiment
for wall-clock reporting; every experiment runs a single round — the
numbers that matter are the *virtual* times inside the tables.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.obs import artifacts as obs_artifacts
from repro.obs.recorder import RunRecorder, activate, deactivate

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(autouse=True)
def obs_recorder():
    """Record observability for every platform a benchmark creates."""
    recorder = RunRecorder()
    activate(recorder)
    try:
        yield recorder
    finally:
        deactivate()


@pytest.fixture()
def record_table(obs_recorder, request):
    """Print an ExperimentTable and persist text + JSON artifacts.

    ``_record(name, text, table=...)`` — pass the ExperimentTable (or a
    list of tables) when available so the JSON artifact carries the
    rows; the ledger snapshot and metrics come from the active
    recorder either way.
    """

    def _record(name: str, text: str, table=None) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")

        tables = []
        if table is not None:
            tables = list(table) if isinstance(table, (list, tuple)) else [table]
        artifact = obs_artifacts.run_artifact(
            name,
            tables=tables,
            ledger=obs_recorder.merged_ledger_snapshot(),
            metrics=obs_recorder.merged_metrics().snapshot(),
            extra={
                "source": request.node.nodeid,
                "crosscheck_mismatches": obs_recorder.crosscheck(),
            },
        )
        obs_artifacts.write_artifact(
            os.path.join(RESULTS_DIR, f"{name}.json"), artifact
        )

        print()
        print(text)

    return _record


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
