"""Extra benchmark — the EPC paging cliff (§2.1)."""

from conftest import run_once

from repro.experiments.epc_paging import run_epc_paging

WORKING_SETS_MB = (16, 32, 64, 80, 93, 110, 128, 192, 256)


def test_epc_paging_cliff(benchmark, record_table):
    table = run_once(benchmark, run_epc_paging, working_sets_mb=WORKING_SETS_MB)
    record_table("epc_paging", table.format(y_format="{:.4f}"), table=table)

    slowdown = table.get("enclave/host slowdown")
    below = [slowdown.y_at(ws) for ws in (16, 32, 64, 80, 93)]
    above = [slowdown.y_at(ws) for ws in (110, 128, 192, 256)]
    # Flat MEE-only penalty below the usable EPC, then the cliff.
    assert max(below) - min(below) < 0.01
    assert min(above) > max(below) * 1.5
    assert above == sorted(above)
