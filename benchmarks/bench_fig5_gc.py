"""Fig. 5a — GC time in/out of the enclave; Fig. 5b — GC consistency."""

from conftest import run_once

from repro.experiments.fig5_gc import run_fig5a, run_fig5b

COUNTS = tuple(range(50_000, 500_001, 50_000))


def test_fig5a_gc_performance(benchmark, record_table):
    table = run_once(benchmark, run_fig5a, counts=COUNTS)
    record_table("fig5a_gc_performance", table.format(), table=table)

    # Paper: the enclave adds about an order of magnitude of GC time.
    ratio = table.mean_ratio("concrete-in: GC in", "concrete-out: GC out")
    assert 7.0 <= ratio <= 13.0


def test_fig5b_gc_consistency(benchmark, record_table):
    table = run_once(
        benchmark, run_fig5b, duration_s=60.0, batch=500, create_phase_s=30.0
    )
    record_table("fig5b_gc_consistency", table.format(y_format="{:.0f}"), table=table)

    proxies = table.get("proxy-objs-out")
    mirrors = table.get("mirror-objs-in")
    # Mirrors track proxies at every sampled timestamp (consistency).
    for (_, live_proxies), (_, live_mirrors) in zip(proxies.points, mirrors.points):
        assert live_mirrors == live_proxies
    # The timeline actually rose then fell.
    peak = max(proxies.ys())
    assert proxies.points[-1][1] < peak
    assert peak > 0
